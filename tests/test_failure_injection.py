"""Failure injection: the models degrade gracefully, never crash.

Campaigns hit dead C&C servers, sinkholed domains, mid-campaign patch
roll-outs, re-imaged machines, and locked files.  None of these may
raise out of the simulation loop; each should produce the documented
degraded behaviour.
"""

import pytest

from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from repro.malware.shamoon import Shamoon, ShamoonConfig
from repro.malware.stuxnet import Stuxnet
from repro.netsim import Internet, Lan


@pytest.fixture
def flame_world(kernel, world, host_factory):
    internet = Internet(kernel)
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, internet, ["cnc.example.com"])
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("V", has_microphone=True)
    lan.attach(victim)
    victim.vfs.write("c:\\users\\u\\documents\\secret-x.docx", b"S" * 400)
    flame = Flame(kernel, world, default_domains=["cnc.example.com"],
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False))
    return {"internet": internet, "center": center, "server": server,
            "lan": lan, "victim": victim, "flame": flame}


def test_cnc_shutdown_mid_campaign_queues_entries(kernel, flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    kernel.run_for(2 * 86400.0)
    uploaded_before = flame.stats["entries_uploaded"]
    assert uploaded_before > 0
    flame_world["server"].shutdown()
    # Days of beaconing against a dead server: no crash, entries queue.
    kernel.run_for(5 * 86400.0)
    state = flame._states["V"]
    assert flame.stats["entries_uploaded"] == uploaded_before
    assert state.pending_entries  # backlog accumulates for later


def test_all_domains_sinkholed_stops_exfil_not_collection(kernel,
                                                          flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    flame_world["internet"].dns.sinkhole("cnc.example.com")
    kernel.run_for(4 * 86400.0)
    assert flame.stats["entries_uploaded"] == 0
    assert flame._states["V"].pending_entries
    assert victim.is_infected_by("flame")  # dwell continues


def test_bluetooth_bridge_carries_backlog_when_cnc_dies(kernel, world,
                                                        host_factory):
    from repro.bluetooth import BluetoothDevice, BluetoothNeighborhood

    neighborhood = BluetoothNeighborhood(kernel)
    internet = Internet(kernel)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("BTV", has_bluetooth=True)
    lan.attach(victim)
    victim.vfs.write("c:\\users\\u\\documents\\secret.docx", b"S" * 100)
    neighborhood.place_device(victim, BluetoothDevice(
        "bridge", internet_connected=True))
    from repro.crypto import generate_keypair

    flame = Flame(kernel, world, default_domains=["dead.example.com"],
                  coordinator_public_key=generate_keypair("c").public,
                  bluetooth_neighborhood=neighborhood,
                  config=FlameConfig(enable_wu_mitm=False))
    flame.infect(victim, via="initial")
    kernel.run_for(3 * 86400.0)
    assert flame.stats["bluetooth_exfil"] > 0  # footnote 5's bypass path


def test_midcampaign_patch_stops_spooler_spread(kernel, world, host_factory):
    lan = Lan(kernel, "plant")
    a = host_factory("A", os_version="xp", file_and_print_sharing=True)
    b = host_factory("B", os_version="xp", file_and_print_sharing=True)
    c = host_factory("C", os_version="xp", file_and_print_sharing=True)
    for host in (a, b, c):
        lan.attach(host)
    stux = Stuxnet(kernel, world)
    stux.infect(a, via="initial")
    kernel.run_for(7 * 3600.0)  # first spread step lands on B
    assert b.is_infected_by("stuxnet")
    # Emergency patching of the last clean host.
    c.patches.apply("MS10-061")
    kernel.run_for(10 * 86400.0)
    assert not c.is_infected_by("stuxnet")


def test_reimaged_host_gets_reinfected_over_shares(kernel, world,
                                                   host_factory):
    lan = Lan(kernel, "org", domain_name="org.com")
    a = host_factory("A", file_and_print_sharing=True)
    b = host_factory("B", file_and_print_sharing=True)
    lan.attach(a)
    lan.attach(b)
    sham = Shamoon(kernel, world, lan.domain_admin_credential,
                   ShamoonConfig(spread_interval=600.0))
    sham.infect(a, via="initial")
    kernel.run_for(3600.0)
    assert b.is_infected_by("shamoon")
    # IT re-images B (clean state, same shares, same domain trust)...
    b.remove_infection("shamoon")
    sham.infected_hosts.pop("B", None)
    for record in list(b.vfs.walk("c:", raw=True)):
        if record.origin == "shamoon":
            b.vfs.delete(record.path)
    # ...the resident spreaders notice the membership change...
    assert sham.renew_sweep(lan) >= 1
    # ...and the worm simply takes it again.
    kernel.run_for(4 * 3600.0)
    assert b.is_infected_by("shamoon")


def test_wiper_skips_locked_files_and_finishes(host_factory, world):
    from repro.malware.shamoon import run_wiper
    from repro.malware.shamoon.wiper import build_eldos_driver_image

    host = host_factory("LOCKED")
    host.vfs.write("c:\\users\\u\\documents\\normal.docx", b"N" * 2000)
    locked = host.vfs.write("c:\\users\\u\\documents\\locked.docx",
                            b"L" * 2000)
    locked.attributes.readonly = True
    stats = run_wiper(host, build_eldos_driver_image(world))
    assert stats["files_overwritten"] == 1          # the normal file
    assert host.vfs.read("c:\\users\\u\\documents\\locked.docx",
                         raw=True) == b"L" * 2000   # survived
    assert stats["mbr_wiped"]                        # wipe still completed
    assert not host.usable()


def test_flame_beacon_survives_host_without_nic(kernel, world, host_factory):
    from repro.crypto import generate_keypair

    flame = Flame(kernel, world, default_domains=["x.example.com"],
                  coordinator_public_key=generate_keypair("k").public,
                  config=FlameConfig(enable_wu_mitm=False))
    offline = host_factory("OFFLINE")   # never attached to a LAN
    flame.infect(offline, via="initial")
    kernel.run_for(3 * 86400.0)         # beacons fire; must not raise
    assert offline.is_infected_by("flame")


def test_stuxnet_beacon_survives_nxdomain_world(kernel, world, host_factory):
    internet = Internet(kernel)         # no futbol domains registered
    from repro.netsim.http import HttpResponse, HttpServer

    probe = HttpServer("wu")
    probe.route("/", lambda r: HttpResponse(200, b"ok"))
    internet.register_site("www.windowsupdate.com", probe)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("NX", os_version="xp")
    lan.attach(victim)
    stux = Stuxnet(kernel, world)
    stux.infect(victim, via="initial")
    kernel.run_for(3 * 86400.0)         # must not raise on NXDOMAIN
    assert victim.is_infected_by("stuxnet")
