"""Clock behaviour: monotonicity, datetime anchoring."""

from datetime import datetime, timezone

import pytest

from repro.sim import SIM_EPOCH, SimClock


def test_clock_starts_at_epoch():
    clock = SimClock()
    assert clock.now == 0.0
    assert clock.now_dt == SIM_EPOCH


def test_advance_moves_time_and_datetime():
    clock = SimClock()
    clock.advance_to(3600.0)
    assert clock.now == 3600.0
    assert clock.now_dt.hour == 1


def test_clock_refuses_to_go_backwards():
    clock = SimClock()
    clock.advance_to(100.0)
    with pytest.raises(ValueError):
        clock.advance_to(99.0)


def test_advance_to_same_time_is_allowed():
    clock = SimClock()
    clock.advance_to(50.0)
    clock.advance_to(50.0)
    assert clock.now == 50.0


def test_seconds_until_future_moment():
    clock = SimClock()
    moment = datetime(2010, 1, 2, tzinfo=timezone.utc)
    assert clock.seconds_until(moment) == 86400.0


def test_seconds_until_past_moment_is_negative():
    clock = SimClock()
    clock.advance_to(86400.0 * 2)
    moment = datetime(2010, 1, 2, tzinfo=timezone.utc)
    assert clock.seconds_until(moment) == -86400.0


def test_to_seconds_shamoon_trigger_date():
    clock = SimClock()
    trigger = datetime(2012, 8, 15, 8, 8, tzinfo=timezone.utc)
    seconds = clock.to_seconds(trigger)
    assert clock.epoch.year == 2010
    # Round-trip through the clock lands on the same instant.
    clock.advance_to(seconds)
    assert clock.now_dt == trigger


def test_naive_datetime_treated_as_utc():
    clock = SimClock()
    naive = datetime(2010, 1, 1, 1, 0)
    assert clock.to_seconds(naive) == 3600.0


def test_custom_epoch():
    epoch = datetime(2012, 1, 1, tzinfo=timezone.utc)
    clock = SimClock(epoch)
    assert clock.now_dt.year == 2012
