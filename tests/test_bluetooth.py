"""Bluetooth neighbourhood and exfil bridging."""

import pytest

from repro.bluetooth import BluetoothDevice, BluetoothNeighborhood


@pytest.fixture
def neighborhood(kernel):
    return BluetoothNeighborhood(kernel)


def test_device_kinds_validated():
    with pytest.raises(ValueError):
        BluetoothDevice("x", kind="submarine")


def test_enumeration_respects_discoverability(neighborhood, host_factory):
    host = host_factory("BT-HOST", has_bluetooth=True)
    visible = BluetoothDevice("phone-1", discoverable=True)
    hidden = BluetoothDevice("phone-2", discoverable=False)
    neighborhood.place_device(host, visible)
    neighborhood.place_device(host, hidden)
    assert neighborhood.devices_near(host) == [visible]
    assert len(neighborhood.devices_near(host, discoverable_only=False)) == 2


def test_remove_device(neighborhood, host_factory):
    host = host_factory("H", has_bluetooth=True)
    device = BluetoothDevice("d")
    neighborhood.place_device(host, device)
    assert neighborhood.remove_device(host, device)
    assert not neighborhood.remove_device(host, device)
    assert neighborhood.devices_near(host) == []


def test_beacon_records_sightings(neighborhood, host_factory, kernel):
    host = host_factory("VICTIM", has_bluetooth=True)
    phone = BluetoothDevice("witness-phone")
    neighborhood.place_device(host, phone)
    kernel.clock.advance_to(100.0)
    witnesses = neighborhood.start_beacon(host)
    assert witnesses == [phone]
    assert neighborhood.is_beaconing(host)
    sightings = neighborhood.sightings_of(host)
    assert sightings == [(phone.address, 100.0)]
    neighborhood.stop_beacon(host)
    assert not neighborhood.is_beaconing(host)


def test_beacon_requires_adapter(neighborhood, host_factory):
    host = host_factory("NO-BT", has_bluetooth=False)
    assert neighborhood.start_beacon(host) == []
    assert not neighborhood.is_beaconing(host)


def test_bridge_prefers_connected_device(neighborhood, host_factory):
    host = host_factory("H", has_bluetooth=True)
    offline = BluetoothDevice("offline-headset", kind="headset")
    online = BluetoothDevice("online-phone", internet_connected=True)
    neighborhood.place_device(host, offline)
    neighborhood.place_device(host, online)
    used = neighborhood.bridge_exfiltrate(host, 5000)
    assert used is online
    assert online.bridged_bytes == 5000
    assert offline.bridged_bytes == 0


def test_bridge_fails_without_connected_device(neighborhood, host_factory):
    host = host_factory("H", has_bluetooth=True)
    neighborhood.place_device(host, BluetoothDevice("h", kind="headset"))
    assert neighborhood.bridge_exfiltrate(host, 100) is None


def test_device_bridge_flag():
    connected = BluetoothDevice("p", internet_connected=True)
    assert connected.bridge(10)
    assert not BluetoothDevice("q").bridge(10)
