"""Code signing over PE images."""

import pytest

from repro.certs import PkiWorld
from repro.certs.codesign import CodeSignature, extract_signature, sign_image
from repro.certs.wellknown import ELDOS, JMICRON
from repro.pe import PeBuilder, parse_pe


@pytest.fixture(scope="module")
def pki():
    return PkiWorld()


def _signed_image(pki, vendor=ELDOS, target_size=None, tamper=False):
    cert, keypair = pki.vendor_credentials(vendor)
    builder = PeBuilder()
    builder.add_code_section(b"driver logic")
    image = sign_image(builder, keypair, [cert], target_size=target_size)
    if tamper:
        # Flip a bit inside the code section's *content* (not the header
        # or section table) so the image still parses but its digest no
        # longer matches the signature.
        mutable = bytearray(image)
        position = image.find(b"driver logic")
        mutable[position] ^= 0xFF
        image = bytes(mutable)
    return image


def test_signed_image_verifies(pki):
    image = _signed_image(pki)
    pe = parse_pe(image)
    store = pki.make_trust_store()
    result = store.verify_code_signature(image, pe)
    assert result, result.reason
    assert result.signer == ELDOS


def test_tampered_image_fails(pki):
    image = _signed_image(pki, tamper=True)
    pe = parse_pe(image)
    result = pki.make_trust_store().verify_code_signature(image, pe)
    assert not result
    assert "digest mismatch" in result.reason


def test_unsigned_image_fails(pki):
    builder = PeBuilder()
    builder.add_code_section(b"code")
    image = builder.build()
    result = pki.make_trust_store().verify_code_signature(image, parse_pe(image))
    assert not result
    assert "unsigned" in result.reason


def test_target_size_is_exact_for_signed_images(pki):
    image = _signed_image(pki, target_size=900 * 1024)
    assert len(image) == 900 * 1024
    pe = parse_pe(image)
    assert pki.make_trust_store().verify_code_signature(image, pe)


def test_signature_blob_round_trip(pki):
    image = _signed_image(pki, vendor=JMICRON)
    signature = extract_signature(parse_pe(image))
    restored = CodeSignature.from_bytes(signature.to_bytes())
    assert restored.signer_subject == JMICRON
    assert restored.algorithm == signature.algorithm
    assert restored.signature == signature.signature


def test_revoking_vendor_serial_blocks_driver(pki):
    image = _signed_image(pki, vendor=JMICRON)
    pe = parse_pe(image)
    store = pki.make_trust_store()
    cert, _ = pki.vendor_credentials(JMICRON)
    store.revoke_serial(cert.serial)
    assert not store.verify_code_signature(image, pe)


def test_code_signature_requires_chain():
    with pytest.raises(ValueError):
        CodeSignature([], "sha256", 1)


def test_image_digest_stable(pki):
    image = _signed_image(pki)
    pe = parse_pe(image)
    store = pki.make_trust_store()
    assert store.image_digest(image, pe) == store.image_digest(image, pe)
