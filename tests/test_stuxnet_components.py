"""Stuxnet building blocks: rootkit, C&C, PLC payload, Step 7 swap."""

import pytest

from repro.certs.wellknown import JMICRON, REALTEK
from repro.malware.stuxnet import (
    PlcAttackPayload,
    StuxnetCncService,
    install_windows_rootkit,
    plc_matches_target,
)
from repro.malware.stuxnet.plc_payload import TRIGGER_BAND
from repro.plc import (
    CentrifugeCascade,
    FrequencyConverterDrive,
    ProfibusBus,
    ProgrammableLogicController,
    FARARO_PAYA,
    VACON,
)
from repro.winsim.drivers import DriverLoadError


def _creds(world):
    return world.vendor_credentials(JMICRON), world.vendor_credentials(REALTEK)


def test_rootkit_installs_with_stolen_certs(host, world):
    jmicron, realtek = _creds(world)
    drivers = install_windows_rootkit(host, jmicron, realtek)
    assert len(drivers) == 2
    assert {d.signer for d in drivers} == {JMICRON, REALTEK}
    # The hider driver conceals stuxnet-origin files from the API view.
    host.vfs.write("c:\\windows\\system32\\evil.bin", b"x", origin="stuxnet")
    assert not host.vfs.exists("c:\\windows\\system32\\evil.bin")
    assert host.vfs.exists("c:\\windows\\system32\\evil.bin", raw=True)


def test_rootkit_refused_after_revocation(host, world):
    jmicron, realtek = _creds(world)
    host.trust_store.revoke_serial(jmicron[0].serial)
    with pytest.raises(DriverLoadError):
        install_windows_rootkit(host, jmicron, realtek)
    # Cleanup happened: no half-installed drivers or files remain.
    assert host.drivers.loaded() == []
    assert not host.vfs.exists(
        "c:\\windows\\system32\\drivers\\mrxcls.sys", raw=True)


def _rig(kernel, vendors):
    bus = ProfibusBus()
    for index, vendor in enumerate(vendors):
        cascade = CentrifugeCascade("C%d" % index, 20,
                                    rng=kernel.rng.fork("c%d" % index))
        bus.attach(FrequencyConverterDrive("drv-%d" % index, vendor,
                                           cascade, kernel.clock))
    return ProgrammableLogicController(kernel, "PLC-T", bus)


def test_fingerprint_requires_both_vendors(kernel):
    assert plc_matches_target(_rig(kernel, [FARARO_PAYA, VACON]))
    assert not plc_matches_target(_rig(kernel, [FARARO_PAYA, FARARO_PAYA]))
    assert not plc_matches_target(_rig(kernel, [VACON]))


def test_fingerprint_requires_profibus_cp(kernel):
    plc = _rig(kernel, [FARARO_PAYA, VACON])
    plc.bus.cp_model = "CP 9999"
    assert not plc_matches_target(plc)


def test_payload_refuses_mismatched_plc(kernel):
    plc = _rig(kernel, [VACON])
    payload = PlcAttackPayload(kernel, plc)
    assert not payload.install()
    assert not payload.armed
    assert "OB0_STUX" not in plc.block_names()


def test_payload_force_install_skips_fingerprint(kernel):
    plc = _rig(kernel, [VACON])
    payload = PlcAttackPayload(kernel, plc)
    assert payload.install(force=True)
    assert payload.armed


def test_payload_trigger_band_and_sequence(kernel):
    plc = _rig(kernel, [FARARO_PAYA, VACON]).power_on()
    payload = PlcAttackPayload(kernel, plc, max_cycles=1)
    assert payload.install()
    low, high = TRIGGER_BAND
    # Below the band: no attack even after days.
    plc.setpoint = low - 200
    kernel.run_for(2 * 86400.0)
    assert payload.cycles_completed == 0
    # In band: the full sequence runs and reports the recorded value.
    plc.setpoint = 1064.0
    kernel.run_for(2 * 86400.0)
    assert payload.cycles_completed == 1
    assert plc.reported_frequency_override is None  # cleaned up after
    assert not plc.control_suppressed


def test_payload_replays_normal_value_during_attack(kernel):
    plc = _rig(kernel, [FARARO_PAYA, VACON]).power_on()
    payload = PlcAttackPayload(kernel, plc, max_cycles=1)
    payload.install()
    kernel.run_for(3700.0)   # reach steady state, trigger fires
    assert payload.attacking
    assert plc.reported_frequency() == pytest.approx(1064.0, abs=2)
    assert plc.actual_frequency() > 1300.0


def test_payload_respects_max_cycles_and_wait(kernel):
    plc = _rig(kernel, [FARARO_PAYA, VACON]).power_on()
    payload = PlcAttackPayload(kernel, plc, max_cycles=2,
                               inter_attack_wait=86400.0)
    payload.install()
    kernel.run_for(30 * 86400.0)
    assert payload.cycles_completed == 2


def test_payload_remove_cleans_plc(kernel):
    plc = _rig(kernel, [FARARO_PAYA, VACON]).power_on()
    payload = PlcAttackPayload(kernel, plc)
    payload.install()
    payload.remove()
    assert "OB0_STUX" not in plc.block_names()
    assert "DB890" not in plc.block_names()
    assert not payload.armed


def test_cnc_service_collects_reports(kernel):
    from repro.netsim import Internet

    internet = Internet(kernel)
    service = StuxnetCncService(internet)
    assert internet.reachable("www.mypremierfutbol.com")
    assert internet.reachable("www.todayfutbol.com")
    import json

    response = internet.http("victim", "GET",
                             "http://www.mypremierfutbol.com/index.php",
                             params={"data": json.dumps(
                                 {"hostname": "V", "ics_software": ["step7"]})})
    assert response.ok
    assert len(service.victim_reports) == 1
    assert len(service.reports_with_ics_software()) == 1


def test_cnc_serves_queued_updates(kernel):
    import json
    from repro.netsim import Internet

    internet = Internet(kernel)
    service = StuxnetCncService(internet)
    service.queue_update("exp-module", b"\x90" * 100)
    response = internet.http("victim", "GET",
                             "http://www.todayfutbol.com/index.php")
    updates = json.loads(response.body.decode())["updates"]
    assert updates == [{"name": "exp-module", "payload_size": 100}]
