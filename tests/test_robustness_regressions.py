"""Regression tests for the robustness-PR satellite fixes."""

import json

import pytest

from repro.malware.shamoon.reporter import REPORT_PATH, ShamoonReportSink
from repro.netsim import Lan, NetworkError
from repro.netsim.http import HttpRequest
from repro.sim import Kernel, SimulationError
from repro.sim.events import EventQueue
from repro.usb.drive import UsbDrive
from repro.usb.hidden_db import HIDDEN_DB_FILENAME, HiddenDatabase


# -- Kernel.run event budget ---------------------------------------------------

def test_run_dispatches_exactly_max_events_before_raising():
    kernel = Kernel()
    dispatched = []

    def reschedule():
        dispatched.append(kernel.now)
        kernel.call_later(0.1, reschedule)

    kernel.call_later(0.1, reschedule)
    with pytest.raises(SimulationError):
        kernel.run(max_events=100)
    assert len(dispatched) == 100
    assert kernel.dispatched_events == 100


def test_run_finishing_at_exactly_max_events_does_not_raise():
    kernel = Kernel()
    for index in range(100):
        kernel.call_later(float(index), lambda: None)
    assert kernel.run(max_events=100) == 100


# -- EventQueue live counter ---------------------------------------------------

def test_len_tracks_cancellations_incrementally():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None, "e%d" % i) for i in range(5)]
    assert len(queue) == 5
    events[2].cancel()
    assert len(queue) == 4
    events[2].cancel()  # double-cancel must not decrement twice
    assert len(queue) == 4
    popped = queue.pop()
    assert popped is events[0]
    assert len(queue) == 3
    popped.cancel()  # cancelling a dispatched event is a no-op for the queue
    assert len(queue) == 3
    while queue.pop() is not None:
        pass
    assert len(queue) == 0


def test_pending_events_property_matches():
    kernel = Kernel()
    handles = [kernel.call_later(1.0, lambda: None) for _ in range(3)]
    assert kernel.pending_events == 3
    handles[0].cancel()
    assert kernel.pending_events == 2


# -- ShamoonReportSink defensive parsing ---------------------------------------

def _report_request(uid):
    return HttpRequest("GET", "http://sink%s" % REPORT_PATH, client="victim",
                       params={"mydata": "org.com", "uid": uid,
                               "state": "10.0.0.5"},
                       body=b"f1 contents")


def test_sink_survives_non_numeric_uid():
    sink = ShamoonReportSink()
    response = sink.server.handle(_report_request("not-a-number"))
    assert response.ok
    assert sink.malformed_reports == 1
    assert len(sink.reports) == 1
    assert sink.reports[0]["malformed"]
    assert sink.total_files_reported() == 0


def test_sink_still_counts_well_formed_reports():
    sink = ShamoonReportSink()
    sink.server.handle(_report_request("12"))
    sink.server.handle(_report_request("garbage"))
    sink.server.handle(_report_request("30"))
    assert sink.total_files_reported() == 42
    assert sink.malformed_reports == 1


# -- Lan.attach hostname collision ---------------------------------------------

def test_attach_rejects_duplicate_hostname(kernel, host_factory):
    lan = Lan(kernel, "office")
    first = host_factory("SAME")
    impostor = host_factory("same")  # hostnames are case-insensitive
    lan.attach(first)
    with pytest.raises(NetworkError):
        lan.attach(impostor)
    # The first host is untouched and the impostor got no address.
    assert lan.host_by_name("SAME") is first
    assert impostor.nic is None
    assert len(lan.hosts()) == 1
    # detach still works cleanly afterwards.
    assert lan.detach(first)
    assert lan.hosts() == []


# -- HiddenDatabase corruption recovery ----------------------------------------

@pytest.mark.parametrize("blob", [
    b"\xff\xfe not json at all",
    b'{"seen_internet": true, "documents": ',      # truncated mid-write
    b'"just a string"',
    b'[1, 2, 3]',
    b'{"seen_internet": "yes", "documents": [], "beacons": []}',
    b'{"documents": []}',                           # keys missing
])
def test_corrupt_hidden_db_is_recreated(blob):
    drive = UsbDrive("stick")
    drive.write(HIDDEN_DB_FILENAME, blob, hidden=True)
    db = HiddenDatabase.load_or_create(drive)
    assert db.documents() == []
    assert not db._state["seen_internet"]
    # The recreated blob on the drive is valid again.
    stored = drive.get(HIDDEN_DB_FILENAME)
    assert json.loads(stored.data.decode("utf-8"))["documents"] == []
    # And the database is fully functional.
    assert db.store_document("HOST", "c:\\x.docx", 10, "doc")
    assert len(HiddenDatabase(drive).documents()) == 1


def test_intact_hidden_db_still_loads():
    drive = UsbDrive("stick")
    db = HiddenDatabase.load_or_create(drive)
    db.mark_internet_connected()
    db.store_document("HOST", "c:\\x.docx", 10, "doc")
    reloaded = HiddenDatabase(drive)
    assert reloaded.seen_internet
    assert len(reloaded.documents()) == 1


# -- Kernel.run_for duration validation ----------------------------------------

def test_run_for_rejects_negative_duration():
    kernel = Kernel()
    with pytest.raises(ValueError, match="non-negative"):
        kernel.run_for(-1.0)


def test_run_for_rejects_nan_duration():
    kernel = Kernel()
    with pytest.raises(ValueError, match="non-negative"):
        kernel.run_for(float("nan"))


def test_run_for_zero_dispatches_only_events_due_now():
    kernel = Kernel()
    fired = []
    kernel.call_later(0.0, lambda: fired.append("now"))
    kernel.call_later(1.0, lambda: fired.append("later"))
    kernel.run_for(0.0)
    assert fired == ["now"]
    assert kernel.now == 0.0


def test_run_for_rejects_bad_durations_without_moving_the_clock():
    kernel = Kernel()
    kernel.call_later(5.0, lambda: None)
    for bad in (-0.5, float("nan")):
        with pytest.raises(ValueError):
            kernel.run_for(bad)
    assert kernel.now == 0.0
    assert kernel.pending_events == 1
