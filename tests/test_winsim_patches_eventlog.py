"""Patch state and event log."""

import pytest

from repro.winsim import (
    MS10_046_LNK,
    MS10_061_SPOOLER,
    PatchState,
    VULNERABILITIES,
)
from repro.winsim.eventlog import EventLog


def test_catalogue_has_the_campaign_bulletins():
    assert set(VULNERABILITIES) == {
        "MS10-046", "MS10-061", "MS10-073", "MS10-092", "MSA-2718704",
    }
    assert VULNERABILITIES[MS10_061_SPOOLER].effect == "remote-code-execution"


def test_fresh_state_fully_vulnerable():
    state = PatchState()
    assert state.is_vulnerable(MS10_046_LNK)
    assert state.applied() == []


def test_apply_and_apply_all():
    state = PatchState()
    state.apply(MS10_046_LNK)
    assert not state.is_vulnerable(MS10_046_LNK)
    assert state.is_vulnerable(MS10_061_SPOOLER)
    state.apply_all()
    assert state.open_vulnerabilities() == []


def test_unknown_bulletin_rejected():
    state = PatchState()
    with pytest.raises(ValueError):
        state.apply("MS99-999")
    with pytest.raises(ValueError):
        state.is_vulnerable("MS99-999")
    with pytest.raises(ValueError):
        PatchState(applied=["MS99-999"])


def test_eventlog_severity_filters():
    log = EventLog()
    log.info("a", "hello")
    log.warning("b", "watch out")
    log.error("b", "boom")
    assert len(log) == 3
    assert len(log.entries(severity="warning")) == 1
    assert len(log.entries(source="b")) == 2
    assert len(log.entries(containing="boo")) == 1


def test_eventlog_observers():
    log = EventLog()
    seen = []
    observer = lambda entry: seen.append(entry.message)
    log.subscribe(observer)
    log.info("x", "one")
    log.unsubscribe(observer)
    log.info("x", "two")
    assert seen == ["one"]
    log.unsubscribe(observer)  # idempotent


def test_eventlog_clear_returns_count():
    log = EventLog()
    log.info("x", "1")
    log.info("x", "2")
    assert log.clear() == 2
    assert len(log) == 0


def test_eventlog_timestamps_follow_clock(kernel):
    log = EventLog(clock=kernel.clock)
    kernel.clock.advance_to(42.0)
    entry = log.info("x", "t")
    assert entry.time == 42.0
