"""Environment builders."""

import pytest

from repro.core import CampaignWorld, build_natanz_plant, build_office_lan
from repro.core.environments import (
    build_flame_infrastructure,
    place_bluetooth_neighborhood,
    seed_user_documents,
)
from repro.plc import FARARO_PAYA, VACON


def test_campaign_world_wiring():
    world = CampaignWorld(seed=1)
    assert world.internet is not None
    assert world.windows_update is not None
    assert world.internet.reachable("www.msn.com")
    assert world.internet.reachable("www.windowsupdate.com")
    host = world.make_host("H-1", os_version="xp")
    assert host.config.os_version == "xp"


def test_campaign_world_without_internet():
    world = CampaignWorld(seed=1, with_internet=False)
    assert world.internet is None
    assert world.windows_update is None


def test_seed_documents_profile(host_factory, kernel):
    host = host_factory("DOC")
    written = seed_user_documents(host, kernel.rng.fork("d"),
                                  docs_per_user=10)
    assert written == 10
    files = host.vfs.walk("c:\\users")
    assert len(files) == 10
    assert any(f.extension in ("docx", "xlsx", "dwg", "txt", "zip",
                               "jpg", "mp3", "mp4") for f in files)


def test_seed_documents_size_cap(host_factory, kernel):
    host = host_factory("DOC2")
    seed_user_documents(host, kernel.rng.fork("d"), docs_per_user=20,
                        max_doc_size=4096)
    assert all(f.size <= 4096 for f in host.vfs.walk("c:\\users"))


def test_build_office_lan_shape():
    world = CampaignWorld(seed=2)
    lan, hosts = build_office_lan(world, "ministry", 8, docs_per_host=2,
                                  microphone_fraction=1.0)
    assert len(hosts) == 8
    assert len(lan.hosts()) == 8
    assert all(h.config.has_microphone for h in hosts)
    assert not lan.air_gapped
    assert hosts[0].hostname.startswith("MINISTRY-")


def test_build_office_lan_air_gapped():
    world = CampaignWorld(seed=3)
    lan, hosts = build_office_lan(world, "plant", 2, air_gapped=True,
                                  docs_per_host=0)
    assert lan.air_gapped
    assert len(hosts[0].vfs.walk("c:\\users")) == 0


def test_build_office_lan_deterministic():
    def fingerprint(seed):
        world = CampaignWorld(seed=seed)
        _, hosts = build_office_lan(world, "x", 5, docs_per_host=3)
        return [(h.hostname, h.config.has_bluetooth,
                 len(h.vfs.walk("c:\\users"))) for h in hosts]

    assert fingerprint(7) == fingerprint(7)


def test_build_natanz_plant_matches_stuxnet_fingerprint():
    from repro.malware.stuxnet import plc_matches_target

    world = CampaignWorld(seed=4)
    plant = build_natanz_plant(world, centrifuge_count=100,
                               workstation_count=2)
    assert plc_matches_target(plant["plc"])
    assert sum(len(c) for c in plant["cascades"]) == 100
    assert plant["lan"].air_gapped
    assert "step7" in plant["engineering_host"].installed_software
    assert plant["plc"].running
    vendors = plant["bus"].vendors()
    assert FARARO_PAYA in vendors and VACON in vendors


def test_build_flame_infrastructure_fig4_numbers():
    world = CampaignWorld(seed=5)
    infra = build_flame_infrastructure(world, domain_count=80,
                                       server_count=22)
    assert len(infra["pool"]) == 80
    assert len(infra["servers"]) == 22
    assert len(infra["default_domains"]) == 5
    assert world.internet.site_count() >= 22
    # Every domain resolves to a live server.
    for domain in infra["pool"].domains():
        assert world.internet.reachable(domain)
    # Servers were hardened by the admin automation.
    assert all(not s.logging_enabled for s in infra["servers"])


def test_place_bluetooth_devices():
    world = CampaignWorld(seed=6)
    lan, hosts = build_office_lan(world, "bt", 6, docs_per_host=0,
                                  bluetooth_fraction=1.0)
    devices = place_bluetooth_neighborhood(world, hosts, devices_per_host=2)
    assert len(devices) == 12
    assert world.bluetooth.devices_near(hosts[0], discoverable_only=False)
