"""Flame end-to-end behaviours: collection loop, courier, suicide."""

import pytest

from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from repro.malware.flame.suicide import forensic_residue
from repro.netsim import Internet, Lan
from repro.netsim.windowsupdate import UpdateRegistry
from repro.usb import UsbDrive


@pytest.fixture
def flame_world(kernel, world, host_factory):
    internet = Internet(kernel)
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc-01", center.coordinator_public_key)
    center.provision_server(server, internet, ["cnc-primary.com"])
    lan = Lan(kernel, "ministry", internet=internet)
    victim = host_factory("V-1", has_microphone=True)
    lan.attach(victim)
    victim.vfs.write("c:\\users\\u\\documents\\secret-report.docx", b"S" * 700)
    victim.vfs.write("c:\\users\\u\\documents\\shopping.txt", b"s" * 50)
    flame = Flame(kernel, world, default_domains=["cnc-primary.com"],
                  update_registry=UpdateRegistry(),
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False))
    return {"center": center, "server": server, "lan": lan,
            "victim": victim, "flame": flame}


def test_install_drops_bare_bone_main_file(flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    record = victim.vfs.get("c:\\windows\\system32\\mssecmgr.ocx", raw=True)
    assert record.size == 900 * 1024
    assert record.origin == "flame"


def test_footprint_grows_to_20mb_after_cnc_contact(kernel, flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    assert flame.footprint_bytes(victim) < 1024 * 1024
    kernel.run_for(2 * 86400.0)
    assert flame.footprint_bytes(victim) == pytest.approx(20 * 1024 * 1024,
                                                          rel=0.01)


def test_collection_uploads_metadata_and_sysinfo(kernel, flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    kernel.run_for(3 * 86400.0)
    assert flame.stats["entries_uploaded"] >= 2
    assert flame_world["server"].bytes_received > 0


def test_module_update_package_applied(kernel, flame_world):
    from repro.malware.flame.scripts import JIMMY_V2_SOURCE

    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    flame_world["center"].push_module_update("jimmy", JIMMY_V2_SOURCE)
    kernel.run_for(86400.0)
    assert flame.modules.versions()["jimmy"] == 2
    assert flame.stats["updates_applied"] == 1


def test_steal_files_command_round_trip(kernel, flame_world):
    import json

    flame, victim, center = (flame_world["flame"], flame_world["victim"],
                             flame_world["center"])
    flame.infect(victim, via="initial")
    center.push_command(
        "STEAL_FILES",
        json.dumps(["c:\\users\\u\\documents\\secret-report.docx"]).encode(),
        client_id="uid-v-1",
    )
    kernel.run_for(86400.0)
    center.harvest()
    center.coordinator_decrypt_backlog()
    kinds = set()
    for item in center.recovered_intelligence:
        head = item["data"].split(b"\x00", 1)[0]
        kinds.add(json.loads(head.decode())["kind"])
    assert "files" in kinds


def test_usb_courier_across_air_gap(kernel, world, host_factory, flame_world):
    flame = flame_world["flame"]
    # An air-gapped victim with juicy documents.
    plant_lan = Lan(kernel, "plant", internet=None)
    isolated = host_factory("ISOLATED")
    plant_lan.attach(isolated)
    isolated.vfs.write("c:\\users\\u\\documents\\secret-blueprints.dwg",
                       b"B" * 900)
    flame.infect(isolated, via="initial")
    kernel.run_for(2 * 86400.0)  # collection ran; uploads impossible

    # The stick first visits a connected machine, then the island.
    connected = flame_world["victim"]
    flame.infect(connected, via="initial")
    stick = UsbDrive("courier")
    connected.insert_usb(stick, open_in_explorer=False)
    isolated.insert_usb(stick, open_in_explorer=False)
    from repro.usb import HiddenDatabase

    db = HiddenDatabase.load_or_create(stick)
    assert db.documents(), "courier should have stored leaked docs"
    # Back to the connected machine: flush to C&C.
    connected.insert_usb(stick, open_in_explorer=False)
    assert flame.stats["courier_documents"] > 0


def test_usb_spread_weaponises_sticks(flame_world, host_factory):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    stick = UsbDrive("innocent")
    victim.insert_usb(stick, open_in_explorer=False)
    assert stick.exists("autorun.inf")
    next_victim = host_factory("NEXT", os_version="xp", autorun_enabled=True)
    next_victim.insert_usb(stick, open_in_explorer=False)
    assert next_victim.is_infected_by("flame")
    assert "usb-autorun" in flame.infections_by_vector()


def test_suicide_leaves_no_residue(kernel, flame_world):
    flame, victim, center = (flame_world["flame"], flame_world["victim"],
                             flame_world["center"])
    flame.infect(victim, via="initial")
    kernel.run_for(2 * 86400.0)
    assert flame.footprint_bytes(victim) > 0
    center.broadcast_suicide()
    kernel.run_for(86400.0)
    assert not victim.is_infected_by("flame")
    assert forensic_residue(victim) == []
    assert flame.active_infections() == []
    # User documents survive: suicide only shreds Flame's own artefacts.
    assert victim.vfs.exists("c:\\users\\u\\documents\\secret-report.docx")


def test_evasion_suppresses_collection_under_scrutiny(kernel, flame_world):
    flame, victim = flame_world["flame"], flame_world["victim"]
    flame.infect(victim, via="initial")
    state = flame._states["V-1"]
    # Heavy AV noise referencing flame components raises the risk level.
    for _ in range(5):
        victim.event_log.warning("antivirus", "mssecmgr.ocx flagged")
    before = flame.stats["entries_uploaded"]
    kernel.run_for(2 * 86400.0)
    assert state.adventcfg.suppressed_actions > 0


def test_ablation_no_evasion_keeps_collecting(kernel, world, host_factory,
                                              flame_world):
    flame = Flame(kernel, world, default_domains=["cnc-primary.com"],
                  coordinator_public_key=(
                      flame_world["center"].coordinator_public_key),
                  config=FlameConfig(enable_wu_mitm=False,
                                     respect_evasion=False))
    victim = host_factory("LOUD", has_microphone=True)
    flame_world["lan"].attach(victim)
    flame.infect(victim, via="initial")
    for _ in range(5):
        victim.event_log.warning("antivirus", "mssecmgr.ocx flagged")
    kernel.run_for(2 * 86400.0)
    state = flame._states["LOUD"]
    assert state.adventcfg.suppressed_actions == 0
    assert flame.stats["entries_uploaded"] > 0
