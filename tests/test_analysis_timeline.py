"""Forensic timeline reconstruction."""

import pytest

from repro.analysis import (
    category_histogram,
    dwell_time,
    reconstruct_timeline,
    render_timeline,
)
from repro.malware.stuxnet import Stuxnet
from repro.usb import UsbDrive


@pytest.fixture
def incident(kernel, world, host_factory):
    stux = Stuxnet(kernel, world)
    victim = host_factory("ENG-XP", os_version="xp")
    kernel.clock.advance_to(1000.0)
    victim.insert_usb(stux.weaponize_drive(UsbDrive("stick")))
    kernel.run_for(3600.0)
    return {"stux": stux, "victim": victim, "kernel": kernel}


def test_timeline_reconstructs_kill_chain(incident):
    events = reconstruct_timeline(incident["kernel"],
                                  hosts=[incident["victim"]])
    categories = [e.category for e in events]
    assert "initial-access" in categories
    assert "defense-evasion" in categories
    # Initial access precedes defense evasion in time.
    first_access = next(e for e in events if e.category == "initial-access")
    evasion = next(e for e in events if e.category == "defense-evasion")
    assert first_access.time <= evasion.time
    # Events come out time-ordered.
    times = [e.time for e in events]
    assert times == sorted(times)


def test_timeline_category_filter(incident):
    only_access = reconstruct_timeline(
        incident["kernel"], hosts=[incident["victim"]],
        categories={"initial-access"})
    assert only_access
    assert all(e.category == "initial-access" for e in only_access)


def test_timeline_host_filter_excludes_others(incident, host_factory):
    bystander = host_factory("CLEAN-PC")
    events = reconstruct_timeline(incident["kernel"], hosts=[bystander])
    assert events == []


def test_timeline_without_host_filter_includes_all(incident):
    events = reconstruct_timeline(incident["kernel"])
    assert any(e.category == "initial-access" for e in events)


def test_dwell_time(incident):
    dwell = dwell_time(incident["kernel"], "stuxnet", "ENG-XP")
    assert dwell == pytest.approx(3600.0, abs=1.0)
    assert dwell_time(incident["kernel"], "stuxnet", "NEVER-HIT") is None


def test_render_with_calendar_stamps(incident):
    events = reconstruct_timeline(incident["kernel"],
                                  hosts=[incident["victim"]])
    text = render_timeline(events, clock=incident["kernel"].clock, limit=3)
    assert "2010-01-01" in text
    assert text.count("\n") <= 2


def test_category_histogram(incident):
    events = reconstruct_timeline(incident["kernel"])
    histogram = category_histogram(events)
    assert histogram.get("initial-access", 0) >= 1
    assert sum(histogram.values()) == len(events)
