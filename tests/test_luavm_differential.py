"""Differential fuzzing: the bytecode VM against the tree-walker.

Hypothesis generates well-formed Lua-subset programs — locals, tables,
closures, ``if``/``while``/numeric ``for``, ``break``/``return``,
arithmetic/comparison/concat — and every program is executed on both
backends.  The two runs must agree on:

* the chunk's return value,
* the observable globals afterwards,
* the ``print`` output stream,
* the exact host-API call sequence (a registered ``probe`` recorder),
* and, when the program fails, the raised error type *and message*.

Programs are generated to terminate deterministically (loops are
structurally bounded), so with the default instruction budget neither
backend ever aborts mid-program and a hang on either side shows up as a
budget error rather than a wedged test run.  Budget- and depth-limit
parity is covered by the explicit hostile-program tests at the bottom,
where both backends must abort with the same error even though their
per-statement step accounting differs.

Run the fuzzer longer locally with, e.g.::

    PYTHONPATH=src python -m pytest tests/test_luavm_differential.py \
        -p no:cacheprovider --hypothesis-seed=random \
        -o 'addopts=' --hypothesis-profile=default -q

and raise ``max_examples`` via a hypothesis profile if hunting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.luavm import (
    BytecodeVM,
    LuaError,
    LuaRuntimeError,
    LuaVM,
    create_vm,
    using_backend,
)

# --- program generator ------------------------------------------------------
#
# The generator writes source text over a fixed vocabulary declared by a
# prelude, so every name reference is to an already-bound variable.
# (Forward references are the one spec-level divergence between the
# dynamic tree-walker and static compilation, so the fuzzer stays inside
# the declared-before-use subset that the Flame scripts also obey.)
#
# Hypothesis supplies a seed; a plain ``random.Random`` expands it into
# a program.  Deeply recursive hypothesis strategies proved ~1000x
# slower to draw from than this, and with a differential oracle the
# shrinker matters less than raw example throughput — on failure the
# assert prints the whole offending program.

import random

_NUM_NAMES = ("a", "b", "c")
_STR_NAMES = ("s1", "s2")

_PRELUDE = """
local a = 3
local b = -2
local c = 10
local s1 = 'alpha'
local s2 = 'x'
local t = {}
local function f1(x, y)
  return x * 2 + y
end
local function mk(x)
  return function(n) return x + n end
end
local cl = mk(7)
g1 = 0
g2 = ''
"""

class _ProgramBuilder:
    """Expand one PRNG seed into a well-formed Lua-subset program."""

    def __init__(self, seed):
        self.rng = random.Random(seed)

    def num_expr(self, depth):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return rng.choice([
                str(rng.randint(-9, 9)),
                rng.choice(_NUM_NAMES),
                "g1", "#t", "#s1",
            ])
        kind = rng.randrange(7)
        if kind == 0:
            return "(%s %s %s)" % (self.num_expr(depth - 1),
                                   rng.choice(["+", "-", "*"]),
                                   self.num_expr(depth - 1))
        if kind == 1:
            # Non-zero literal denominators keep division type-sound
            # without making it rare.
            return "(%s %s %d)" % (self.num_expr(depth - 1),
                                   rng.choice(["/", "%"]),
                                   rng.randint(1, 7))
        if kind == 2:
            # The space matters: "--8" would lex as a comment.
            return "(- %s)" % self.num_expr(depth - 1)
        if kind == 3:
            return "f1(%s, %s)" % (self.num_expr(depth - 1),
                                   self.num_expr(depth - 1))
        if kind == 4:
            return "cl(%s)" % self.num_expr(depth - 1)
        if kind == 5:
            return "probe(%s)" % self.num_expr(depth - 1)
        return "((t[1] == nil and %s) or %s)" % (self.num_expr(depth - 1),
                                                 self.num_expr(depth - 1))

    def str_expr(self, depth):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return rng.choice(["'lit'", "''", "'0'", "g2"]
                              + list(_STR_NAMES))
        kind = rng.randrange(4)
        if kind == 0:
            return "(%s .. %s)" % (self.str_expr(depth - 1),
                                   self.str_expr(depth - 1))
        if kind == 1:
            return "(%s .. %s)" % (self.str_expr(depth - 1),
                                   self.num_expr(depth - 1))
        if kind == 2:
            return "tostring(%s)" % self.num_expr(depth - 1)
        return "string.upper(%s)" % self.str_expr(depth - 1)

    def bool_expr(self, depth):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            kind = rng.randrange(3)
            if kind == 0:
                return "(%s %s %s)" % (
                    self.num_expr(1),
                    rng.choice(["<", "<=", ">", ">=", "==", "~="]),
                    self.num_expr(1))
            if kind == 1:
                return "(%s %s %s)" % (self.str_expr(1),
                                       rng.choice(["<", "==", "~="]),
                                       self.str_expr(1))
            return "(t[2] == nil)"
        kind = rng.randrange(2)
        if kind == 0:
            return "(%s %s %s)" % (self.bool_expr(depth - 1),
                                   rng.choice(["and", "or"]),
                                   self.bool_expr(depth - 1))
        return "(not %s)" % self.bool_expr(depth - 1)

    def statement(self, depth, in_loop):
        rng = self.rng
        kinds = list(range(10))
        if in_loop:
            kinds += [10, 11]
        if depth > 0:
            kinds += [12, 13, 14, 15]
        kind = rng.choice(kinds)
        if kind == 0:
            return "%s = %s" % (rng.choice(_NUM_NAMES), self.num_expr(2))
        if kind == 1:
            return "%s = %s" % (rng.choice(_STR_NAMES), self.str_expr(2))
        if kind == 2:
            return "g1 = %s" % self.num_expr(2)
        if kind == 3:
            return "g2 = %s" % self.str_expr(2)
        if kind == 4:
            # Redeclaration of an existing local exercises slot reuse.
            return "local %s = %s" % (rng.choice(_NUM_NAMES),
                                      self.num_expr(2))
        if kind == 5:
            return "t[%d] = %s" % (rng.randint(1, 4), self.num_expr(2))
        if kind == 6:
            return "t.%s = %s" % (rng.choice(["x", "y"]), self.str_expr(2))
        if kind == 7:
            return "probe(%s)" % self.num_expr(2)
        if kind == 8:
            return "print(%s)" % self.num_expr(2)
        if kind == 9:
            return "print(%s)" % self.str_expr(2)
        if kind == 10:
            return "if a > 99 then break end"
        if kind == 11:
            return "break"
        if kind == 12:
            body = self.block(depth - 1, in_loop)
            if rng.random() < 0.5:
                return "if %s then\n%s\nend" % (self.bool_expr(2), body)
            return "if %s then\n%s\nelse\n%s\nend" % (
                self.bool_expr(2), body, self.block(depth - 1, in_loop))
        if kind == 13:
            return "for i%d = 1, %d do\n%s\nend" % (
                rng.randint(1, 4), rng.randint(1, 4),
                self.block(depth - 1, True))
        if kind == 14:
            return "for i%d = %d, 1, -1 do\n%s\nend" % (
                rng.randint(3, 6), rng.randint(2, 3),
                self.block(depth - 1, True))
        # ``w`` is reserved for while guards and never assigned by other
        # generated statements; ``local`` makes each loop own its
        # counter (a nested while shadows rather than reusing it, which
        # with break could otherwise leave the outer guard reinflated
        # and the loop non-terminating).
        return "local w = %d\nwhile w > 0 do\nw = w - 1\n%s\nend" % (
            rng.randint(1, 4), self.block(depth - 1, True))

    def block(self, depth, in_loop):
        statements = []
        for _ in range(self.rng.randint(1, 4)):
            statement = self.statement(depth, in_loop)
            statements.append(statement)
            if statement == "break":
                break  # the parser treats a bare break as a terminator
        return "\n".join(statements)

    def program(self):
        rng = self.rng
        body = [self.statement(2, False) for _ in range(rng.randint(1, 8))]
        kind = rng.randrange(4)
        if kind == 0:
            body.append("return %s" % self.num_expr(2))
        elif kind == 1:
            body.append("return %s" % self.str_expr(2))
        elif kind == 2:
            body.append("return t[1]")
        return _PRELUDE + "\n".join(body)


def lua_programs():
    return st.integers(min_value=0, max_value=2 ** 48).map(
        lambda seed: _ProgramBuilder(seed).program())


# --- execution + comparison -------------------------------------------------

_OBSERVED_GLOBALS = ("g1", "g2", "w")


def _normalise(value):
    if callable(value) or (value is not None
                           and type(value).__name__ in ("LuaFunction",
                                                        "BFunction")):
        return "<function>"
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    return value


def _observe(vm_class, source, budget=None):
    """Run ``source`` and capture every observable channel."""
    vm = vm_class() if budget is None else vm_class(instruction_budget=budget)
    probes = []
    vm.register("probe", lambda x: probes.append(x) or x)
    try:
        result = vm.run(source)
        error = None
    except LuaError as exc:
        result = None
        error = (type(exc).__name__, str(exc))
    globals_seen = {name: _normalise(vm.get_global(name))
                    for name in _OBSERVED_GLOBALS}
    return {
        "result": _normalise(result),
        "error": error,
        "globals": globals_seen,
        "output": list(vm.output),
        "probes": probes,
    }


@settings(max_examples=150, deadline=None)
@given(source=lua_programs())
def test_backends_agree_on_generated_programs(source):
    tree = _observe(LuaVM, source)
    compiled = _observe(BytecodeVM, source)
    assert compiled == tree, "divergence on program:\n%s" % source


@settings(max_examples=60, deadline=None)
@given(source=lua_programs())
def test_bytecode_round_trip_preserves_behaviour(source):
    """Serialize → deserialize → execute matches direct execution."""
    from repro.luavm.code import Chunk
    from repro.luavm.compiler import compile_source

    chunk = compile_source(source)
    revived = Chunk.from_bytes(chunk.to_bytes())
    direct = BytecodeVM()
    direct.register("probe", lambda x: x)
    vm = BytecodeVM()
    vm.register("probe", lambda x: x)
    try:
        expected = direct.run(source)
        err_expected = None
    except LuaRuntimeError as exc:
        expected, err_expected = None, str(exc)
    try:
        got = vm.run_chunk(revived)
        err_got = None
    except LuaRuntimeError as exc:
        got, err_got = None, str(exc)
    assert _normalise(got) == _normalise(expected)
    assert err_got == err_expected
    assert [vm.get_global(n) for n in _OBSERVED_GLOBALS] == \
        [direct.get_global(n) for n in _OBSERVED_GLOBALS]


# --- explicit parity cases --------------------------------------------------

HOSTILE_PROGRAMS = [
    "while true do end",
    "local i = 0\nwhile true do i = i + 1 end",
    "local function f() return f() end\nreturn f()",
    "local function f(n) return f(n + 1) end\nreturn f(0)",
    "for i = 1, 100000000 do end",
]


@pytest.mark.parametrize("source", HOSTILE_PROGRAMS)
def test_hostile_programs_abort_identically(source):
    """Neither backend may hang; both raise the same typed error."""
    outcomes = {}
    for backend_class in (LuaVM, BytecodeVM):
        vm = backend_class(instruction_budget=20000)
        with pytest.raises(LuaRuntimeError) as excinfo:
            vm.run(source)
        outcomes[backend_class.__name__] = str(excinfo.value)
    assert outcomes["LuaVM"] == outcomes["BytecodeVM"]


EDGE_PROGRAMS = [
    # Closure capture is per-iteration, not per-loop.
    """
    local fns = {}
    for i = 1, 3 do
      local v = i * 10
      fns[i] = function() return v end
    end
    return fns[1]() + fns[2]() + fns[3]()
    """,
    # break unwinds nested block scopes without corrupting outer locals.
    """
    local acc = 0
    for i = 1, 5 do
      local x = i
      if x == 3 then break end
      acc = acc + x
    end
    return acc
    """,
    # Method call evaluates the receiver once, before the arguments.
    """
    local calls = ''
    local t = {n = 2}
    function t.mul(self, k) return self.n * k end
    return t:mul(21)
    """,
    # Numeric for bounds are evaluated once, before the loop runs.
    """
    local n = 3
    local hits = 0
    for i = 1, n do
      n = 0
      hits = hits + 1
    end
    return hits
    """,
    # and/or short-circuit skips side effects identically.
    """
    count = 0
    function bump() count = count + 1 return true end
    local x = false and bump()
    local y = true or bump()
    return count
    """,
    # Chunk-level locals are visible to get_global (both backends treat
    # the chunk body as the global scope).
    "local exposed = 41\nreturn exposed + 1",
    # do-block scoping (parsed as if true).
    """
    local x = 1
    do
      local x = 2
    end
    return x
    """,
]


@pytest.mark.parametrize("source", EDGE_PROGRAMS)
def test_semantic_edge_cases_agree(source):
    tree = _observe(LuaVM, source)
    compiled = _observe(BytecodeVM, source)
    assert compiled == tree


def test_cross_chunk_function_calls():
    """A function defined by one run() is callable from a later chunk."""
    for backend in ("tree", "bytecode"):
        vm = create_vm(backend=backend)
        vm.run("function helper(n) return n + 100 end")
        assert vm.run("return helper(1) + helper(2)") == 203
        assert vm.call("helper", 5) == 105


def test_using_backend_switches_default():
    with using_backend("tree"):
        assert create_vm().backend == "tree"
    with using_backend("bytecode"):
        assert create_vm().backend == "bytecode"
    with pytest.raises(ValueError):
        create_vm(backend="jit")
    with pytest.raises(ValueError):
        with using_backend("nope"):
            pass
