"""Certificates: validity, usages, TBS encoding, serialization."""

import pytest

from repro.certs import Certificate, CertificateAuthority
from repro.certs.certificate import (
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
)
from repro.crypto import generate_keypair


@pytest.fixture(scope="module")
def authority():
    return CertificateAuthority("Test Root CA")


@pytest.fixture(scope="module")
def leaf(authority):
    cert, _ = authority.issue_with_new_key("Leaf Corp",
                                           {KEY_USAGE_CODE_SIGNING})
    return cert


def test_issued_certificate_verifies_against_issuer(authority, leaf):
    assert leaf.verify_signature(authority.keypair.public)


def test_signature_does_not_verify_against_other_key(leaf):
    other = generate_keypair("other")
    assert not leaf.verify_signature(other.public)


def test_usage_checks(leaf):
    assert leaf.allows(KEY_USAGE_CODE_SIGNING)
    assert not leaf.allows(KEY_USAGE_LICENSE_VERIFICATION)


def test_unknown_usage_rejected():
    key = generate_keypair("u").public
    with pytest.raises(ValueError):
        Certificate("s", "i", "1", key, {"world-domination"}, 0, 10)


def test_empty_validity_window_rejected():
    key = generate_keypair("u").public
    with pytest.raises(ValueError):
        Certificate("s", "i", "1", key, set(), 10, 10)


def test_validity_window(leaf):
    assert leaf.valid_at(leaf.not_before)
    assert leaf.valid_at(leaf.not_after)
    assert not leaf.valid_at(leaf.not_after + 1)


def test_tbs_bytes_are_block_aligned_without_pad(leaf):
    from repro.crypto import WEAK_DIGEST_SIZE

    assert len(leaf.tbs_bytes()) % WEAK_DIGEST_SIZE == 0


def test_tbs_changes_with_subject(authority):
    a, _ = authority.issue_with_new_key("Subject A", {KEY_USAGE_CODE_SIGNING})
    b, _ = authority.issue_with_new_key("Subject B", {KEY_USAGE_CODE_SIGNING})
    assert a.tbs_bytes() != b.tbs_bytes()


def test_serialization_round_trip(leaf, authority):
    restored = Certificate.from_bytes(leaf.to_bytes())
    assert restored.subject == leaf.subject
    assert restored.issuer == leaf.issuer
    assert restored.serial == leaf.serial
    assert restored.usages == leaf.usages
    assert restored.public_key == leaf.public_key
    assert restored.tbs_bytes() == leaf.tbs_bytes()
    assert restored.verify_signature(authority.keypair.public)


def test_self_signed_root(authority):
    root = authority.root_certificate
    assert root.is_self_signed
    assert root.verify_signature(authority.keypair.public)


def test_serials_are_unique(authority):
    a, _ = authority.issue_with_new_key("SA", {KEY_USAGE_CODE_SIGNING})
    b, _ = authority.issue_with_new_key("SB", {KEY_USAGE_CODE_SIGNING})
    assert a.serial != b.serial


def test_weakmd5_issued_certificate_verifies(authority):
    cert, _ = authority.issue_with_new_key(
        "Weak Corp", {KEY_USAGE_LICENSE_VERIFICATION}, algorithm="weakmd5")
    assert cert.signature_algorithm == "weakmd5"
    assert cert.verify_signature(authority.keypair.public)
