"""Property-based tests: PE build/parse round trips."""

from hypothesis import given, settings, strategies as st

from repro.pe import MACHINE_AMD64, MACHINE_I386, PeBuilder, parse_pe

_section_names = st.text(
    alphabet=st.sampled_from("abcdefgh."), min_size=1, max_size=8,
)
_resource_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)


@settings(max_examples=50, deadline=None)
@given(
    machine=st.sampled_from([MACHINE_I386, MACHINE_AMD64]),
    timestamp=st.integers(min_value=0, max_value=2**32 - 1),
    sections=st.lists(
        st.tuples(_section_names, st.binary(max_size=512)),
        max_size=4, unique_by=lambda item: item[0],
    ),
    resources=st.lists(
        st.tuples(_resource_names, st.binary(max_size=256),
                  st.one_of(st.none(), st.binary(min_size=1, max_size=4))),
        max_size=4,
    ),
)
def test_round_trip_preserves_everything(machine, timestamp, sections,
                                         resources):
    builder = PeBuilder(machine=machine, timestamp=timestamp)
    for name, data in sections:
        if name in (".rsrc", ".idata", ".pad"):
            continue
        builder.add_section(name, data)
    for name, plaintext, key in resources:
        if key is None:
            builder.add_resource(name, plaintext)
        else:
            builder.add_encrypted_resource(name, plaintext, key)
    image = builder.build()
    pe = parse_pe(image)
    assert pe.machine == machine
    assert pe.timestamp == timestamp
    for name, data in sections:
        if name in (".rsrc", ".idata", ".pad"):
            continue
        assert pe.section(name).data == data
    parsed_names = [r.name for r in pe.resources]
    assert parsed_names == [name for name, _, _ in resources]
    for name, plaintext, key in resources:
        matches = [r for r in pe.resources if r.name == name]
        assert any(r.decrypt() == plaintext for r in matches)


@settings(max_examples=30, deadline=None)
@given(target_kib=st.integers(min_value=4, max_value=256))
def test_target_size_always_exact(target_kib):
    builder = PeBuilder()
    builder.add_code_section(b"x")
    image = builder.build(target_size=target_kib * 1024)
    assert len(image) == target_kib * 1024
    parse_pe(image)  # still well-formed


@settings(max_examples=60, deadline=None)
@given(noise=st.binary(max_size=256))
def test_parser_never_hangs_or_crashes_weirdly(noise):
    from repro.pe import PeFormatError

    try:
        parse_pe(noise)
    except PeFormatError:
        pass  # rejecting garbage is the contract
