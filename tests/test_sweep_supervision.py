"""Crash-injection suite for the supervised sweep path.

Every test here drives real worker processes through real failures —
``os._exit`` mid-replica, sleeps that outlive wall-clock timeouts,
heartbeats that stop — and asserts the two supervision invariants:

1. *Isolation*: a failure costs one replica attempt, never the sweep.
2. *Determinism*: whatever the supervisor had to kill and retry, the
   surviving replicas are byte-identical to an undisturbed serial run,
   because every attempt re-runs from the replica's pure seed.
"""

import pytest

from repro.core.ensemble import CampaignSpec, ReplicaFailure
from repro.core.resume import SweepCheckpoint
from repro.sim.errors import (
    CheckpointError,
    PoisonReplicaError,
    ReplicaTimeoutError,
    SupervisionError,
)
from repro.sim.supervisor import ChaosPlan, SupervisorConfig
from repro.sim.sweep import SweepConfig, run_sweep


SPEC = CampaignSpec.quick("shamoon")


def serial_baseline(replicas=4, base_seed=42):
    return run_sweep(SPEC, SweepConfig(
        replicas=replicas, mode="serial", base_seed=base_seed))


def supervised_config(replicas=4, base_seed=42, workers=2):
    return SweepConfig(replicas=replicas, workers=workers,
                       mode="supervised", base_seed=base_seed)


def digests(result):
    return [replica.trace_digest for replica in result.replicas]


def counter(result, name):
    metric = result.supervision["metrics"].get(name)
    return metric["value"] if metric else 0


# -- happy path ----------------------------------------------------------------

def test_supervised_sweep_matches_serial_bit_for_bit():
    serial = serial_baseline()
    supervised = run_sweep(SPEC, supervised_config())
    assert digests(supervised) == digests(serial)
    assert supervised.measurements() == serial.measurements()
    assert supervised.failures == []
    assert supervised.complete()
    assert supervised.supervision["replicas_completed"] == 4
    assert supervised.supervision["worker_restarts"] == 0
    assert supervised.supervision["salvaged"] is False


def test_supervision_kwarg_forces_supervised_mode():
    result = run_sweep(SPEC, SweepConfig(replicas=2, workers=2,
                                         base_seed=42),
                       supervision=SupervisorConfig())
    assert result.mode == "supervised"
    assert result.supervision is not None


def test_supervision_refuses_serial_mode():
    with pytest.raises(ValueError, match="serial"):
        run_sweep(SPEC, SweepConfig(replicas=2, mode="serial", base_seed=1),
                  supervision=SupervisorConfig())


# -- crash isolation -----------------------------------------------------------

def test_worker_crash_is_isolated_and_replica_retried():
    serial = serial_baseline()
    supervised = run_sweep(
        SPEC, supervised_config(),
        supervision=SupervisorConfig(chaos=ChaosPlan({1: ("crash",)})))
    # The crashed replica was retried on a fresh worker and every
    # replica (including it) is byte-identical to the serial run.
    assert digests(supervised) == digests(serial)
    assert supervised.failures == []
    assert supervised.supervision["worker_restarts"] >= 1
    assert counter(supervised, "supervisor.worker_crashes") >= 1


def test_crash_respares_chunk_tail_without_refailing_neighbours():
    # chunk_size=4 puts several replicas behind the poison one; they
    # must all complete even though their chunk's worker died.
    serial = serial_baseline(replicas=6)
    supervised = run_sweep(
        SPEC, SweepConfig(replicas=6, workers=2, mode="supervised",
                          base_seed=42, chunk_size=4),
        supervision=SupervisorConfig(chaos=ChaosPlan({0: ("crash",)})))
    assert digests(supervised) == digests(serial)
    assert supervised.failures == []


def test_in_process_replica_error_is_retried():
    serial = serial_baseline()
    supervised = run_sweep(
        SPEC, supervised_config(),
        supervision=SupervisorConfig(chaos=ChaosPlan({2: ("error",)})))
    assert digests(supervised) == digests(serial)
    assert supervised.failures == []
    assert counter(supervised, "supervisor.replica_errors") == 1
    # An in-process error never killed the worker.
    assert counter(supervised, "supervisor.worker_crashes") == 0


# -- quarantine ----------------------------------------------------------------

def test_poison_replica_is_quarantined_after_bounded_retries():
    serial = serial_baseline()
    supervised = run_sweep(
        SPEC, supervised_config(),
        supervision=SupervisorConfig(
            max_replica_retries=2,
            chaos=ChaosPlan({2: ("crash", "crash", "crash")})))
    # The poison replica is a structured failure, not an exception.
    assert [f.index for f in supervised.failures] == [2]
    failure = supervised.failures[0]
    assert failure.reason == "worker-crash"
    assert failure.attempts == 3
    assert failure.quarantined is True
    assert len(failure.history) == 3
    assert not supervised.complete()
    assert supervised.quarantined() == [2]
    # Gap-tolerant aggregation: the other replicas are intact and
    # identical to their serial counterparts.
    assert [r.index for r in supervised.replicas] == [0, 1, 3]
    expected = [r.trace_digest for r in serial.replicas if r.index != 2]
    assert digests(supervised) == expected
    assert supervised.aggregate()


def test_quarantine_failure_round_trips_as_dict():
    failure = ReplicaFailure(index=3, seed="s", attempts=2,
                             reason="timeout", quarantined=True,
                             history=[{"attempt": 1, "reason": "timeout",
                                       "detail": None}])
    payload = failure.as_dict()
    assert payload["index"] == 3
    assert payload["reason"] == "timeout"
    assert payload["quarantined"] is True
    # as_dict is a snapshot, not a view.
    payload["history"].append("x")
    assert len(failure.history) == 1


def test_on_failure_fail_raises_typed_poison_error():
    with pytest.raises(PoisonReplicaError) as excinfo:
        run_sweep(
            SPEC, supervised_config(replicas=3),
            supervision=SupervisorConfig(
                max_replica_retries=0, on_failure="fail",
                chaos=ChaosPlan({0: ("crash",)})))
    assert excinfo.value.index == 0
    assert excinfo.value.reason == "worker-crash"


# -- timeouts and hang detection -----------------------------------------------

def test_replica_timeout_kills_and_quarantines_hung_replica():
    supervised = run_sweep(
        SPEC, supervised_config(replicas=3),
        supervision=SupervisorConfig(
            replica_timeout=0.5, max_replica_retries=1,
            chaos=ChaosPlan({1: ("hang", "hang")})))
    assert [f.index for f in supervised.failures] == [1]
    assert supervised.failures[0].reason == "timeout"
    assert supervised.failures[0].attempts == 2
    assert [r.index for r in supervised.replicas] == [0, 2]
    assert counter(supervised, "supervisor.replica_timeouts") == 2


def test_replica_timeout_on_failure_fail_raises_timeout_error():
    with pytest.raises(ReplicaTimeoutError) as excinfo:
        run_sweep(
            SPEC, supervised_config(replicas=3),
            supervision=SupervisorConfig(
                replica_timeout=0.5, max_replica_retries=0,
                on_failure="fail", chaos=ChaosPlan({1: ("hang",)})))
    assert excinfo.value.index == 1
    assert excinfo.value.timeout == 0.5


def test_frozen_worker_is_detected_by_missing_heartbeats():
    # "freeze" stops heartbeating entirely, so only hang detection —
    # not the replica timeout, which is unset — can catch it.
    supervised = run_sweep(
        SPEC, supervised_config(replicas=3),
        supervision=SupervisorConfig(
            heartbeat_interval=0.1, hang_timeout=0.5,
            max_replica_retries=0, chaos=ChaosPlan({1: ("freeze",)})))
    assert [f.index for f in supervised.failures] == [1]
    assert supervised.failures[0].reason == "hang"
    assert counter(supervised, "supervisor.worker_hangs") == 1


def test_sweep_deadline_salvages_completed_replicas():
    supervised = run_sweep(
        SPEC, supervised_config(),
        supervision=SupervisorConfig(
            sweep_deadline=2.0,
            chaos=ChaosPlan({2: ("hang",), 3: ("hang",)})))
    # The hung replicas are salvage failures: retriable, not poison.
    assert supervised.supervision["salvaged"] is True
    assert [f.index for f in supervised.failures] == [2, 3]
    assert all(f.reason == "deadline" for f in supervised.failures)
    assert all(not f.quarantined for f in supervised.failures)
    assert supervised.quarantined() == []
    # ...and everything that finished in time survived.
    assert [r.index for r in supervised.replicas] == [0, 1]
    serial = serial_baseline()
    expected = [r.trace_digest for r in serial.replicas if r.index < 2]
    assert digests(supervised) == expected


# -- salvage + resume ----------------------------------------------------------

def test_quarantine_persists_and_resume_retries_to_byte_identity(tmp_path):
    serial = serial_baseline()
    checkpoint = str(tmp_path / "sweep")
    config = supervised_config()

    # Pass 1: replica 2 is poison for both attempts -> quarantined.
    first = run_sweep(
        SPEC, config, checkpoint_dir=checkpoint,
        supervision=SupervisorConfig(
            max_replica_retries=1,
            chaos=ChaosPlan({2: ("crash", "crash")})))
    assert [f.index for f in first.failures] == [2]
    manifest = SweepCheckpoint.load(checkpoint)
    on_disk = manifest.failures()
    assert set(on_disk) == {2}
    assert on_disk[2].reason == "worker-crash"
    assert on_disk[2].attempts == 2
    assert sorted(manifest.completed()) == [0, 1, 3]

    # Pass 2: resume retries the quarantined replica (chaos gone) and
    # the merged sweep is byte-identical to the undisturbed serial run.
    second = run_sweep(SPEC, config, checkpoint_dir=checkpoint, resume=True)
    assert digests(second) == digests(serial)
    assert second.failures == []
    assert second.complete()
    # The stale failure record was cleared by the successful retry.
    assert SweepCheckpoint.load(checkpoint).failures() == {}


def test_resume_skip_quarantined_carries_failure_records(tmp_path):
    checkpoint = str(tmp_path / "sweep")
    config = supervised_config()
    run_sweep(
        SPEC, config, checkpoint_dir=checkpoint,
        supervision=SupervisorConfig(
            max_replica_retries=1,
            chaos=ChaosPlan({2: ("crash", "crash")})))

    result = run_sweep(SPEC, config, checkpoint_dir=checkpoint,
                       resume=True, retry_quarantined=False)
    # The quarantined replica was skipped, not retried: its failure
    # record rides along and the record stays on disk.
    assert [f.index for f in result.failures] == [2]
    assert result.failures[0].quarantined is True
    assert [r.index for r in result.replicas] == [0, 1, 3]
    assert set(SweepCheckpoint.load(checkpoint).failures()) == {2}


def test_deadline_salvage_then_resume_completes_the_sweep(tmp_path):
    serial = serial_baseline()
    checkpoint = str(tmp_path / "sweep")
    config = supervised_config()
    first = run_sweep(
        SPEC, config, checkpoint_dir=checkpoint,
        supervision=SupervisorConfig(
            sweep_deadline=2.0, chaos=ChaosPlan({3: ("hang",)})))
    assert first.supervision["salvaged"] is True
    assert 3 in {f.index for f in first.failures}

    second = run_sweep(SPEC, config, checkpoint_dir=checkpoint, resume=True)
    assert digests(second) == digests(serial)
    assert second.complete()


# -- KeyboardInterrupt regression ----------------------------------------------

def test_keyboard_interrupt_flushes_manifest_and_kills_pool(tmp_path,
                                                            monkeypatch):
    from repro.sim.workerpool import WarmPool

    checkpoint = str(tmp_path / "sweep")
    config = SweepConfig(replicas=6, workers=2, mode="parallel",
                         base_seed=42, chunk_size=1)
    recorded = []
    original = SweepCheckpoint.record

    def explode_on_third(self, replica):
        original(self, replica)
        recorded.append(replica.index)
        if len(recorded) == 3:
            raise KeyboardInterrupt

    monkeypatch.setattr(SweepCheckpoint, "record", explode_on_third)
    terminated = []
    original_terminate = WarmPool.terminate

    def spy_terminate(self):
        terminated.append(True)
        return original_terminate(self)

    monkeypatch.setattr(WarmPool, "terminate", spy_terminate)
    with pytest.raises(KeyboardInterrupt):
        run_sweep(SPEC, config, checkpoint_dir=checkpoint)
    # The pool was torn down hard (no orphaned workers)...
    assert terminated
    # ...and every replica recorded before the interrupt is on disk, so
    # the checkpoint is a valid resume point.
    monkeypatch.undo()
    manifest = SweepCheckpoint.load(checkpoint)
    assert sorted(manifest.completed()) == sorted(recorded)
    assert len(recorded) == 3

    serial = serial_baseline(replicas=6)
    resumed = run_sweep(SPEC, config, checkpoint_dir=checkpoint, resume=True)
    assert digests(resumed) == digests(serial)


# -- typed checkpoint errors ---------------------------------------------------

def test_unusable_checkpoint_directory_raises_typed_error(tmp_path):
    # A path routed through a regular file fails with NotADirectoryError
    # (an OSError) at the OS level; the store must surface the typed
    # CheckpointError instead.  (A chmod-based permission probe would be
    # useless here: the suite runs as root, which ignores mode bits.)
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory\n")
    bad_dir = str(blocker / "sweep")
    config = supervised_config(replicas=2)
    with pytest.raises(CheckpointError):
        run_sweep(SPEC, config, checkpoint_dir=bad_dir)
    with pytest.raises(CheckpointError):
        SweepCheckpoint.create(bad_dir, SPEC, config)


# -- configuration validation --------------------------------------------------

def test_chaos_plan_rejects_unknown_behaviours():
    with pytest.raises(ValueError, match="unknown chaos behaviour"):
        ChaosPlan({0: ("explode",)})


def test_chaos_plan_single_string_and_exhaustion():
    plan = ChaosPlan({1: "crash"})
    assert plan.behavior(1, 1) == "crash"
    assert plan.behavior(1, 2) is None   # beyond the sequence: ok
    assert plan.behavior(0, 1) is None   # unlisted replica: ok
    assert ChaosPlan({2: ("ok", "hang")}).behavior(2, 1) is None


@pytest.mark.parametrize("kwargs", [
    {"replica_timeout": 0},
    {"sweep_deadline": -1},
    {"hang_timeout": 0},
    {"max_replica_retries": -1},
    {"max_replica_retries": True},
    {"on_failure": "explode"},
    {"poll_interval": 0},
    {"heartbeat_interval": 0},
])
def test_supervisor_config_validation(kwargs):
    with pytest.raises(ValueError):
        SupervisorConfig(**kwargs)


def test_supervisor_errors_are_typed():
    assert issubclass(ReplicaTimeoutError, SupervisionError)
    assert issubclass(PoisonReplicaError, SupervisionError)
    error = ReplicaTimeoutError(4, 2, 1.5)
    assert (error.index, error.attempts, error.timeout) == (4, 2, 1.5)
    poison = PoisonReplicaError(7, 3, "worker-crash")
    assert (poison.index, poison.attempts, poison.reason) == \
        (7, 3, "worker-crash")
