"""Stuxnet end-to-end behaviours on the full model."""

import pytest

from repro.malware.stuxnet import Stuxnet, StuxnetConfig
from repro.netsim import Lan
from repro.plc import Step7Application
from repro.usb import UsbDrive
from repro.winsim.processes import IntegrityLevel


@pytest.fixture
def stuxnet(kernel, world):
    return Stuxnet(kernel, world)


def _xp_host(host_factory, name="XP-1"):
    return host_factory(name, os_version="xp", file_and_print_sharing=True)


def test_usb_lnk_infection(host_factory, stuxnet):
    victim = _xp_host(host_factory)
    drive = stuxnet.weaponize_drive(UsbDrive("stick"))
    victim.insert_usb(drive)
    assert victim.is_infected_by("stuxnet")
    assert stuxnet.infections_by_vector() == {"usb-lnk": 1}
    # Dropper artefacts are present (raw view; rootkit hides them).
    assert victim.vfs.exists("c:\\windows\\system32\\winsta.exe", raw=True)


def test_infection_is_idempotent(host_factory, stuxnet):
    victim = _xp_host(host_factory)
    drive = stuxnet.weaponize_drive(UsbDrive("stick"))
    victim.insert_usb(drive)
    assert not stuxnet.infect(victim, via="again")
    assert stuxnet.infection_count == 1


def test_eop_reaches_system_and_installs_rootkit(host_factory, stuxnet):
    victim = _xp_host(host_factory)
    victim.insert_usb(stuxnet.weaponize_drive(UsbDrive("stick")))
    assert stuxnet.integrity_achieved[victim.hostname] == IntegrityLevel.SYSTEM
    assert victim.hostname in stuxnet.rootkit_hosts
    # Rootkit active: dropped files invisible through the API.
    assert not victim.vfs.exists("c:\\windows\\system32\\winsta.exe")


def test_fully_patched_host_resists_usb_and_eop(host_factory, stuxnet):
    victim = _xp_host(host_factory, "PATCHED")
    victim.patches.apply_all()
    victim.insert_usb(stuxnet.weaponize_drive(UsbDrive("stick")))
    assert not victim.is_infected_by("stuxnet")


def test_eop_patched_host_gets_user_level_infection_no_rootkit(
        host_factory, stuxnet):
    victim = _xp_host(host_factory, "HALFPATCHED")
    victim.patches.apply("MS10-073")
    victim.patches.apply("MS10-092")
    victim.insert_usb(stuxnet.weaponize_drive(UsbDrive("stick")))
    assert victim.is_infected_by("stuxnet")
    assert stuxnet.integrity_achieved["HALFPATCHED"] == IntegrityLevel.USER
    assert "HALFPATCHED" not in stuxnet.rootkit_hosts


def test_infected_host_weaponises_new_sticks(host_factory, stuxnet):
    patient_zero = _xp_host(host_factory, "P0")
    patient_zero.insert_usb(stuxnet.weaponize_drive(UsbDrive("first")))
    clean_stick = UsbDrive("clean")
    patient_zero.insert_usb(clean_stick, open_in_explorer=False)
    assert clean_stick.exists("copy of shortcut to 7.lnk")
    # The weaponised stick now infects another machine.
    second = _xp_host(host_factory, "P1")
    second.insert_usb(clean_stick)
    assert second.is_infected_by("stuxnet")


def test_usb_spread_disabled_by_config(kernel, world, host_factory):
    stux = Stuxnet(kernel, world, config=StuxnetConfig(spread_over_usb=False))
    patient_zero = _xp_host(host_factory, "P0")
    stux.infect(patient_zero, via="initial")
    stick = UsbDrive("clean")
    patient_zero.insert_usb(stick, open_in_explorer=False)
    assert not stick.exists("copy of shortcut to 7.lnk")


def test_spooler_spread_over_lan(kernel, host_factory, stuxnet):
    lan = Lan(kernel, "plant")
    a = _xp_host(host_factory, "A")
    b = _xp_host(host_factory, "B")
    lan.attach(a)
    lan.attach(b)
    stuxnet.infect(a, via="initial")
    kernel.run_for(2 * 86400.0)
    assert b.is_infected_by("stuxnet")
    assert stuxnet.infections_by_vector().get("network-spooler") == 1


def test_spooler_spread_blocked_by_patch(kernel, host_factory, stuxnet):
    lan = Lan(kernel, "plant")
    a = _xp_host(host_factory, "A")
    b = _xp_host(host_factory, "B")
    b.patches.apply("MS10-061")
    lan.attach(a)
    lan.attach(b)
    stuxnet.infect(a, via="initial")
    kernel.run_for(3 * 86400.0)
    assert not b.is_infected_by("stuxnet")


def test_step7_dll_swap_on_infected_engineering_host(host_factory, stuxnet):
    eng = _xp_host(host_factory, "ENG")
    step7 = Step7Application(eng)
    stuxnet.infect(eng, via="initial")
    assert eng.vfs.exists("c:\\windows\\system32\\s7otbxsx.dll", raw=True)
    fake = eng.vfs.get("c:\\windows\\system32\\s7otbxdx.dll", raw=True)
    assert fake.origin == "stuxnet"
    assert "ENG" in stuxnet.step7_infections


def test_opening_project_infects_folder(host_factory, stuxnet):
    eng = _xp_host(host_factory, "ENG")
    step7 = Step7Application(eng)
    step7.create_project("p", "c:\\projects\\p")
    stuxnet.infect(eng, via="initial")
    step7.open_project("c:\\projects\\p")
    infection = stuxnet.step7_infections["ENG"]
    assert "c:\\projects\\p" in infection.infected_project_folders
    assert eng.vfs.exists("c:\\projects\\p\\s7p00001.dbf", raw=True)


def test_cnc_beacon_reports_to_futbol_domains(kernel, world, host_factory):
    from repro.malware.stuxnet import StuxnetCncService
    from repro.netsim import Internet

    internet = Internet(kernel)
    from repro.netsim.http import HttpResponse, HttpServer

    probe = HttpServer("wu")
    probe.route("/", lambda r: HttpResponse(200, b"ok"))
    internet.register_site("www.windowsupdate.com", probe)
    service = StuxnetCncService(internet)
    stux = Stuxnet(kernel, world, cnc_service=service)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("V", os_version="xp")
    lan.attach(victim)
    stux.infect(victim, via="initial")
    kernel.run_for(2 * 86400.0)
    assert service.victim_reports
    assert service.victim_reports[0]["hostname"] == "V"


def test_uninstall_removes_everything(kernel, host_factory, stuxnet):
    eng = _xp_host(host_factory, "ENG")
    step7 = Step7Application(eng)
    stuxnet.infect(eng, via="initial")
    stuxnet.uninstall(eng)
    assert not eng.is_infected_by("stuxnet")
    assert not eng.vfs.exists("c:\\windows\\system32\\winsta.exe", raw=True)
    assert eng.vfs.exists("c:\\windows\\system32\\s7otbxdx.dll", raw=True)
    restored = eng.vfs.get("c:\\windows\\system32\\s7otbxdx.dll", raw=True)
    assert restored.origin == "siemens"
    assert not eng.vfs.exists("c:\\windows\\system32\\s7otbxsx.dll", raw=True)
