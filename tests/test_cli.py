"""The `python -m repro` command line."""

import json

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_stuxnet_subcommand(capsys):
    assert main(["stuxnet", "--days", "40", "--centrifuges", "50",
                 "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Stuxnet / Natanz" in out
    assert "centrifuges_destroyed" in out


def test_shamoon_subcommand_json(capsys):
    assert main(["--json", "shamoon", "--hosts", "30", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["hosts_wiped"] == 30
    assert payload["hosts_usable_after"] == 0


def test_flame_subcommand_with_suicide(capsys):
    assert main(["flame", "--victims", "4", "--weeks", "1",
                 "--suicide", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "Flame espionage" in out
    assert "active_infections" in out


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])


# -- the trace exporter --------------------------------------------------------

TRACE_ARGS = ["trace", "--campaign", "stuxnet", "--quick", "--seed", "7"]


def test_trace_subcommand_emits_valid_jsonl(capsys):
    assert main(TRACE_ARGS + ["--out", "-"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.strip().split("\n")]
    assert lines[0]["kind"] == "meta"
    assert lines[0]["campaign"] == "stuxnet"
    assert lines[0]["seed"] == 7
    assert lines[0]["preset"] == "quick"
    kinds = {line["kind"] for line in lines}
    assert kinds == {"meta", "span", "record", "metric"}
    span_names = {line["name"] for line in lines
                  if line["kind"] == "span"}
    # The full Fig. 1 kill chain, settle to operation, is spanned.
    assert {"stuxnet.campaign", "stuxnet.settle", "stuxnet.usb_entry",
            "stuxnet.step7_infect", "stuxnet.operation",
            "stuxnet.infect"} <= span_names


def test_trace_same_seed_is_byte_identical(capsys):
    assert main(TRACE_ARGS + ["--out", "-"]) == 0
    first = capsys.readouterr().out
    assert main(TRACE_ARGS + ["--out", "-"]) == 0
    assert capsys.readouterr().out == first


def test_trace_writes_file_and_figures(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    figures = tmp_path / "figs"
    assert main(["trace", "--campaign", "shamoon", "--seed", "3",
                 "--out", str(out), "--figures", str(figures)]) == 0
    assert "wrote" in capsys.readouterr().out
    lines = out.read_text().strip().split("\n")
    assert json.loads(lines[0])["kind"] == "meta"
    fig = json.loads((figures / "fig6-shamoon-components.json").read_text())
    assert fig["campaign"] == "shamoon"
    assert any(edge["label"] == "stage" for edge in fig["edges"])
    for edge in fig["edges"]:
        assert set(edge) == {"src", "dst", "label", "count"}


def test_trace_rejects_unknown_campaign(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "--campaign", "conficker", "--out", "-"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_trace_rejects_quick_and_full_together():
    with pytest.raises(SystemExit) as excinfo:
        main(TRACE_ARGS + ["--full"])
    assert excinfo.value.code == 2


# -- the --metrics flag --------------------------------------------------------

def test_metrics_flag_json_shape(capsys):
    assert main(["--json", "shamoon", "--hosts", "10", "--seed", "4",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert set(payload) == {"result", "metrics"}
    assert payload["result"]["hosts_wiped"] == 10
    metrics = payload["metrics"]
    assert metrics["shamoon.hosts_wiped"] == {"type": "counter",
                                              "value": 10}
    assert metrics["sim.events_dispatched"]["value"] > 0
    assert metrics["shamoon.infection_day"]["type"] == "histogram"


def test_metrics_flag_prometheus_text(capsys):
    assert main(["shamoon", "--hosts", "5", "--seed", "4",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE shamoon_hosts_wiped counter" in out
    assert "shamoon_hosts_wiped 5" in out
    assert '_bucket{le="+Inf"}' in out


def test_metrics_flag_off_keeps_legacy_output(capsys):
    assert main(["--json", "shamoon", "--hosts", "5", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert "metrics" not in payload
    assert payload["hosts_wiped"] == 5


def test_sweep_metrics_flag(capsys):
    assert main(["--json", "sweep", "--campaign", "shamoon",
                 "--replicas", "2", "--serial", "--metrics"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    merged = payload["metrics_merged"]
    per_replica = [replica["metrics"] for replica in payload["replicas"]]
    assert len(per_replica) == 2
    assert merged["shamoon.hosts_wiped"]["value"] == sum(
        snapshot["shamoon.hosts_wiped"]["value"]
        for snapshot in per_replica)
    assert payload["metrics_aggregate"]["shamoon.hosts_wiped"]["n"] == 2


def test_sweep_without_metrics_flag_omits_metric_keys(capsys):
    assert main(["--json", "sweep", "--campaign", "shamoon",
                 "--replicas", "2", "--serial"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert "metrics_merged" not in payload
    assert "metrics_aggregate" not in payload


def test_trace_limit_bounds_the_exported_trace(capsys):
    """``--trace-limit`` caps trace memory: the JSONL export carries
    only the newest N records plus a ``records_evicted`` meta count."""
    assert main(["trace", "--campaign", "shamoon", "--seed", "3",
                 "--quick", "--trace-limit", "40", "--out", "-"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.strip().split("\n")]
    meta = lines[0]
    assert meta["kind"] == "meta"
    assert meta["records"] == 40
    assert meta["records_evicted"] > 0
    records = [line for line in lines if line["kind"] == "record"]
    assert len(records) == 40


def test_campaign_trace_limit_flag_runs(capsys):
    assert main(["shamoon", "--hosts", "10", "--seed", "4",
                 "--trace-limit", "25"]) == 0
    assert "Shamoon wiper" in capsys.readouterr().out


# -- checkpoint / resume flags -------------------------------------------------

def test_campaign_checkpoint_then_resume_round_trips(tmp_path, capsys):
    directory = str(tmp_path / "ckpt")
    args = ["shamoon", "--hosts", "10", "--seed", "4",
            "--checkpoint-dir", directory]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert (tmp_path / "ckpt" / "MANIFEST.json").exists()
    assert main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert "resume: verified" in second
    assert "no replay needed" in second
    # Identical measurements, with only the resume banner prepended.
    assert second.splitlines()[1:] == first.splitlines()


def test_resume_preserves_dict_valued_measurement_order(tmp_path, capsys):
    """Stuxnet's ``infection_vectors`` tally is a dict in insertion
    order; the checkpoint file must round-trip that order so a resumed
    finished run prints byte-identically (digests stay canonical)."""
    directory = str(tmp_path / "ckpt")
    args = ["stuxnet", "--days", "40", "--centrifuges", "60",
            "--seed", "9", "--checkpoint-dir", directory]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "infection_vectors" in first
    assert main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert second.splitlines()[1:] == first.splitlines()


def test_campaign_resume_replays_an_interrupted_run(tmp_path, capsys):
    from repro.core.resume import interrupt_after

    directory = str(tmp_path / "ckpt")
    args = ["shamoon", "--hosts", "10", "--seed", "4",
            "--checkpoint-dir", directory]
    assert main(args) == 0
    first = capsys.readouterr().out
    interrupt_after(directory, keep=2)
    assert main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert "resume: verified 2 checkpoints" in second
    assert second.splitlines()[1:] == first.splitlines()


def test_campaign_checkpoint_every_flag(tmp_path):
    import json as _json

    directory = tmp_path / "periodic"
    assert main(["shamoon", "--hosts", "10", "--seed", "4",
                 "--checkpoint-dir", str(directory),
                 "--checkpoint-every", "10"]) == 0
    manifest = _json.loads((directory / "MANIFEST.json").read_text())
    tags = [entry["tag"] for entry in manifest["state"]["checkpoints"]]
    assert "periodic" in tags
    assert tags[-1] == "final"


def test_resume_without_checkpoint_dir_is_rejected():
    with pytest.raises(SystemExit, match="checkpoint-dir"):
        main(["shamoon", "--hosts", "5", "--resume"])
    with pytest.raises(SystemExit, match="checkpoint-dir"):
        main(["sweep", "--campaign", "shamoon", "--replicas", "2",
              "--serial", "--resume"])


def test_sweep_checkpoint_then_resume_matches(tmp_path, capsys):
    import os

    directory = str(tmp_path / "sweep")
    base = ["--json", "sweep", "--campaign", "shamoon", "--replicas", "3",
            "--serial", "--seed", "6"]
    assert main(base) == 0
    out = capsys.readouterr().out
    baseline = json.loads(out[out.index("{"):])
    assert main(base + ["--checkpoint-dir", directory]) == 0
    capsys.readouterr()
    os.remove(os.path.join(directory, "replica-0001.json"))
    assert main(base + ["--checkpoint-dir", directory, "--resume"]) == 0
    out = capsys.readouterr().out
    resumed = json.loads(out[out.index("{"):])
    assert ([r["trace_digest"] for r in resumed["replicas"]]
            == [r["trace_digest"] for r in baseline["replicas"]])
    assert resumed["aggregate"] == baseline["aggregate"]
