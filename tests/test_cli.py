"""The `python -m repro` command line."""

import json

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_stuxnet_subcommand(capsys):
    assert main(["stuxnet", "--days", "40", "--centrifuges", "50",
                 "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Stuxnet / Natanz" in out
    assert "centrifuges_destroyed" in out


def test_shamoon_subcommand_json(capsys):
    assert main(["--json", "shamoon", "--hosts", "30", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["hosts_wiped"] == 30
    assert payload["hosts_usable_after"] == 0


def test_flame_subcommand_with_suicide(capsys):
    assert main(["flame", "--victims", "4", "--weeks", "1",
                 "--suicide", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "Flame espionage" in out
    assert "active_infections" in out


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])
