"""FaultInjector: seeded, clock-driven fault windows on the substrate.

Determinism contract: two kernels with the same seed and the same
injection calls produce the same fault schedule, the same drop
decisions, and byte-identical traces.
"""

import pytest

from repro.netsim import Internet, Lan, NetworkError, NoRouteError
from repro.netsim.http import HttpResponse, HttpServer
from repro.sim import Kernel
from repro.sim.faults import REQUEST_TIMEOUT, FaultKind, lan_scope


def _site(internet, domain):
    server = HttpServer(domain)
    server.route("/", lambda request: HttpResponse(200, b"ok"))
    return internet.register_site(domain, server)


@pytest.fixture
def net(kernel):
    internet = Internet(kernel)
    address = _site(internet, "cnc.example.com")
    return {"internet": internet, "address": address}


def test_dns_blackout_window_opens_and_closes(kernel, net):
    internet = net["internet"]
    kernel.faults.inject_dns_blackout("cnc.example.com", start=100.0,
                                      duration=50.0)
    assert internet.dns.resolve("cnc.example.com") == net["address"]
    kernel.run_for(120.0)
    assert internet.dns.resolve("cnc.example.com") is None
    kernel.run_for(100.0)
    assert internet.dns.resolve("cnc.example.com") == net["address"]


def test_takedown_is_permanent(kernel, net):
    kernel.faults.inject_takedown("cnc.example.com")
    with pytest.raises(NoRouteError):
        net["internet"].http("client", "GET", "http://cnc.example.com/")
    kernel.run_for(10 * 365 * 86400.0)
    assert net["internet"].dns.resolve("cnc.example.com") is None


def test_injected_sinkhole_redirects_resolution(kernel, net):
    kernel.faults.inject_sinkhole("cnc.example.com",
                                  sinkhole_address="sink.research.net")
    assert net["internet"].dns.resolve("cnc.example.com") == "sink.research.net"


def test_latest_injection_wins(kernel, net):
    kernel.faults.inject_takedown("cnc.example.com")
    kernel.faults.inject_sinkhole("cnc.example.com",
                                  sinkhole_address="sink.research.net")
    assert net["internet"].dns.resolve("cnc.example.com") == "sink.research.net"


def test_outage_surfaces_as_no_route(kernel, net):
    kernel.faults.inject_outage(net["address"], duration=300.0)
    with pytest.raises(NoRouteError):
        net["internet"].http("client", "GET", "http://cnc.example.com/")
    kernel.run_for(301.0)
    assert net["internet"].http("client", "GET",
                                "http://cnc.example.com/").ok


def test_outage_also_fails_reachability_probe(kernel, net):
    assert net["internet"].reachable("cnc.example.com")
    kernel.faults.inject_outage(net["address"], duration=300.0)
    assert not net["internet"].reachable("cnc.example.com")


def test_certain_packet_loss_drops_every_request(kernel, net):
    kernel.faults.inject_packet_loss(1.0, duration=600.0)
    with pytest.raises(NetworkError):
        net["internet"].http("client", "GET", "http://cnc.example.com/")
    assert kernel.faults.stats["packets_dropped"] == 1


def test_zero_packet_loss_drops_nothing(kernel, net):
    kernel.faults.inject_packet_loss(0.0, duration=600.0)
    for _ in range(20):
        assert net["internet"].http("client", "GET",
                                    "http://cnc.example.com/").ok
    assert kernel.faults.stats["packets_dropped"] == 0


def test_mild_latency_is_recorded_not_fatal(kernel, net):
    kernel.faults.inject_latency(2.5, duration=600.0)
    assert net["internet"].http("client", "GET", "http://cnc.example.com/").ok
    assert kernel.faults.stats["latency_seconds"] == pytest.approx(2.5)


def test_severe_latency_times_requests_out(kernel, net):
    kernel.faults.inject_latency(REQUEST_TIMEOUT, duration=600.0)
    with pytest.raises(NetworkError):
        net["internet"].http("client", "GET", "http://cnc.example.com/")
    assert kernel.faults.stats["timeouts"] == 1


def test_lan_uplink_outage(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net["internet"])
    host = host_factory("V")
    lan.attach(host)
    kernel.faults.inject_outage(lan_scope("office"), duration=600.0)
    with pytest.raises(NoRouteError):
        lan.http_get(host, "http://cnc.example.com/")
    kernel.run_for(601.0)
    assert lan.http_get(host, "http://cnc.example.com/").ok


def test_takedown_campaign_staggers_domains(kernel, net):
    _site(net["internet"], "b.example.com")
    windows = kernel.faults.inject_takedown_campaign(
        ["cnc.example.com", "b.example.com"], start=100.0, interval=50.0)
    assert [w.start for w in windows] == [100.0, 150.0]
    kernel.run_for(120.0)
    assert net["internet"].dns.resolve("cnc.example.com") is None
    assert net["internet"].dns.resolve("b.example.com") is not None
    kernel.run_for(50.0)
    assert net["internet"].dns.resolve("b.example.com") is None


def test_every_injected_fault_lands_in_the_trace(kernel, net):
    kernel.faults.inject_takedown("cnc.example.com")
    with pytest.raises(NoRouteError):
        net["internet"].http("client", "GET", "http://cnc.example.com/")
    assert kernel.trace.count(actor="faults", action="fault-scheduled") == 1
    fired = kernel.trace.query(actor="faults", action="fault-injected")
    assert len(fired) == 1
    assert fired[0].target == "cnc.example.com"
    assert fired[0].detail["kind"] == FaultKind.TAKEDOWN


def test_bad_parameters_rejected(kernel):
    with pytest.raises(ValueError):
        kernel.faults.inject_packet_loss(1.5)
    with pytest.raises(ValueError):
        kernel.faults.inject_latency(-1.0)


def _fault_scenario(seed):
    kernel = Kernel(seed=seed)
    internet = Internet(kernel)
    address = _site(internet, "cnc.example.com")
    kernel.faults.inject_packet_loss(0.5, start=0.0, duration=3600.0)
    kernel.faults.inject_outage(address, start=1800.0, duration=600.0)
    kernel.faults.inject_dns_blackout("cnc.example.com", start=3000.0,
                                      duration=300.0)
    outcomes = []

    def probe():
        try:
            internet.http("client", "GET", "http://cnc.example.com/")
            outcomes.append("ok")
        except NetworkError as exc:
            outcomes.append(type(exc).__name__)

    for offset in range(0, 3600, 120):
        kernel.call_at(float(offset), probe, "probe")
    kernel.run()
    return kernel, outcomes


def test_same_seed_identical_fault_schedule_and_trace():
    kernel_a, outcomes_a = _fault_scenario(seed=42)
    kernel_b, outcomes_b = _fault_scenario(seed=42)
    assert kernel_a.faults.schedule() == kernel_b.faults.schedule()
    assert outcomes_a == outcomes_b
    assert kernel_a.trace.dump() == kernel_b.trace.dump()
    assert kernel_a.faults.stats == kernel_b.faults.stats
    # The scenario actually exercised both branches of the dice.
    assert "NetworkError" in outcomes_a and "ok" in outcomes_a


def test_different_seed_changes_drop_pattern():
    _, outcomes_a = _fault_scenario(seed=1)
    _, outcomes_b = _fault_scenario(seed=2)
    assert outcomes_a != outcomes_b
