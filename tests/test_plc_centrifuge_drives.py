"""Centrifuge physics and drive integration."""

import pytest

from repro.plc import CentrifugeCascade, FrequencyConverterDrive, FARARO_PAYA
from repro.plc.centrifuge import (
    Centrifuge,
    NOMINAL_FREQUENCY,
    OVERSPEED_LIMIT,
    RESONANCE_LIMIT,
)


def test_nominal_operation_enriches_without_stress():
    machine = Centrifuge("c-1")
    machine.integrate(NOMINAL_FREQUENCY, 86400.0)
    assert machine.accumulated_stress == 0.0
    assert machine.enrichment_output == 86400.0
    assert not machine.destroyed


def test_overspeed_accumulates_stress_proportionally():
    mild = Centrifuge("mild")
    harsh = Centrifuge("harsh")
    mild.integrate(OVERSPEED_LIMIT + 10, 100.0)
    harsh.integrate(OVERSPEED_LIMIT + 110, 100.0)
    assert 0 < mild.accumulated_stress < harsh.accumulated_stress


def test_resonance_crawl_accumulates_stress():
    machine = Centrifuge("c")
    machine.integrate(2.0, 1000.0)
    assert machine.accumulated_stress > 0
    assert machine.enrichment_output == 0


def test_stopped_rotor_accrues_nothing():
    machine = Centrifuge("c")
    machine.integrate(0.0, 1e6)
    assert machine.accumulated_stress == 0.0


def test_band_edges_safe():
    machine = Centrifuge("c")
    machine.integrate(OVERSPEED_LIMIT, 1000.0)
    machine.integrate(RESONANCE_LIMIT, 1000.0)
    assert machine.accumulated_stress == 0.0


def test_destruction_at_capacity_and_permanence():
    machine = Centrifuge("c", stress_capacity=10.0)
    machine.integrate(1410.0, 10_000.0, now=5.0)
    assert machine.destroyed
    assert machine.destroyed_at == 5.0
    produced = machine.enrichment_output
    machine.integrate(NOMINAL_FREQUENCY, 86400.0)
    assert machine.enrichment_output == produced  # dead rotors produce nothing


def test_full_attack_cycle_destroys_weak_rotor():
    machine = Centrifuge("weak", stress_capacity=100.0)
    machine.integrate(1410.0, 900.0)    # overspeed phase
    machine.integrate(2.0, 3000.0)      # crawl phase
    machine.integrate(NOMINAL_FREQUENCY, 60.0)
    assert machine.destroyed


def test_cascade_capacity_spread_is_deterministic(kernel):
    a = CentrifugeCascade("A", 50, rng=kernel.rng.fork("x"))
    b = CentrifugeCascade("B", 50, rng=kernel.rng.fork("x"))
    assert [m.stress_capacity for m in a.centrifuges] == \
           [m.stress_capacity for m in b.centrifuges]


def test_cascade_without_rng_uses_fixed_spread():
    cascade = CentrifugeCascade("A", 10)
    capacities = [m.stress_capacity for m in cascade.centrifuges]
    assert len(set(capacities)) > 1


def test_cascade_aggregates():
    cascade = CentrifugeCascade("A", 10)
    cascade.integrate(NOMINAL_FREQUENCY, 100.0)
    assert cascade.total_enrichment() == 1000.0
    assert cascade.destroyed_count() == 0
    assert cascade.intact_count() == 10
    assert cascade.destruction_fraction() == 0.0
    assert len(cascade) == 10


def test_drive_lazy_integration_is_exact(kernel):
    cascade = CentrifugeCascade("A", 1)
    drive = FrequencyConverterDrive("d", FARARO_PAYA, cascade, kernel.clock)
    drive.set_frequency(NOMINAL_FREQUENCY)
    kernel.clock.advance_to(1000.0)
    drive.set_frequency(0.0)  # integrates the elapsed 1000 s first
    assert cascade.total_enrichment() == 1000.0


def test_drive_clamps_to_max_frequency(kernel):
    cascade = CentrifugeCascade("A", 1)
    drive = FrequencyConverterDrive("d", FARARO_PAYA, cascade, kernel.clock,
                                    max_frequency=1500.0)
    assert drive.set_frequency(9999.0) == 1500.0
    assert drive.set_frequency(-5.0) == 0.0


def test_drive_command_history(kernel):
    cascade = CentrifugeCascade("A", 1)
    drive = FrequencyConverterDrive("d", FARARO_PAYA, cascade, kernel.clock)
    drive.set_frequency(1064.0)
    kernel.clock.advance_to(10.0)
    drive.set_frequency(1410.0)
    assert [f for _, f in drive.command_history] == [0.0, 1064.0, 1410.0]
