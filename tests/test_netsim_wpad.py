"""WPAD discovery: DNS path, NetBIOS fallback, and absence."""

import pytest

from repro.netsim import Internet, Lan
from repro.netsim.wpad import WpadConfig, discover_proxy


@pytest.fixture
def lan(kernel):
    return Lan(kernel, "office", internet=Internet(kernel))


def test_no_wpad_anywhere_returns_none(lan, host_factory):
    client = host_factory("C")
    lan.attach(client)
    assert discover_proxy(lan, client) is None


def test_netbios_fallback_serves_config(lan, host_factory):
    client, squatter = host_factory("C"), host_factory("SQUAT")
    lan.attach(client)
    lan.attach(squatter)
    squatter.netbios_claims["wpad"] = lambda c: WpadConfig("SQUAT", "SQUAT")
    config = discover_proxy(lan, client)
    assert config.proxy_hostname == "SQUAT"
    assert config.served_by == "SQUAT"


def test_enterprise_dns_record_wins_over_netbios(lan, host_factory):
    client, legit, squatter = (host_factory("C"), host_factory("PROXY"),
                               host_factory("SQUAT"))
    for host in (client, legit, squatter):
        lan.attach(host)
    # The enterprise registered a real wpad record: NetBIOS never asked.
    lan.local_dns.register("wpad", lan.ip_of(legit))
    legit.netbios_claims["wpad"] = lambda c: WpadConfig("PROXY", "dns+host")
    squatter.netbios_claims["wpad"] = lambda c: WpadConfig("SQUAT", "SQUAT")
    config = discover_proxy(lan, client)
    assert config.proxy_hostname == "PROXY"


def test_dns_record_to_plain_address(lan, host_factory):
    client = host_factory("C")
    lan.attach(client)
    lan.local_dns.register("wpad", "10.9.9.9")  # off-LAN proxy appliance
    config = discover_proxy(lan, client)
    assert config.proxy_hostname == "10.9.9.9"
    assert config.served_by == "dns"


def test_wpad_config_repr():
    config = WpadConfig("P", "S")
    assert "P" in repr(config)
