"""Schoolbook RSA: signing, sealing, determinism."""

import pytest

from repro.crypto import RsaKeyPair, generate_keypair


def test_sign_verify_round_trip():
    keypair = generate_keypair("tester")
    signature = keypair.sign(b"message")
    assert keypair.public.verify(b"message", signature)


def test_tampered_message_fails_verification():
    keypair = generate_keypair("tester")
    signature = keypair.sign(b"message")
    assert not keypair.public.verify(b"messagE", signature)


def test_wrong_key_fails_verification():
    signature = generate_keypair("a").sign(b"m")
    assert not generate_keypair("b").public.verify(b"m", signature)


def test_signature_over_weak_digest_transfers_to_collision():
    # The core of the Fig. 3 forgery: a signature binds to the digest,
    # so any weak-digest collision inherits it.
    from repro.crypto import forge_collision_block, weak_digest

    keypair = generate_keypair("microsoft-licensing")
    legit = b"legit tbs".ljust(16, b"\x00")
    signature = keypair.sign(legit, algorithm="weakmd5")
    rogue_prefix = b"rogue tbs bytes".ljust(32, b"\x00")
    rogue = rogue_prefix + forge_collision_block(rogue_prefix, weak_digest(legit))
    assert keypair.public.verify(rogue, signature, algorithm="weakmd5")
    # Under sha256 the transfer fails.
    sha_sig = keypair.sign(legit, algorithm="sha256")
    assert not keypair.public.verify(rogue, sha_sig, algorithm="sha256")


def test_encrypt_decrypt_round_trip():
    keypair = generate_keypair("sealer")
    ciphertext = keypair.public.encrypt(b"session-key-16b!")
    assert keypair.decrypt(ciphertext) == b"session-key-16b!"


def test_encrypt_rejects_oversized_payload():
    keypair = generate_keypair("sealer")
    with pytest.raises(ValueError):
        keypair.public.encrypt(b"x" * 128)


def test_deterministic_generation():
    assert generate_keypair("same").modulus == generate_keypair("same").modulus
    assert generate_keypair("a").modulus != generate_keypair("b").modulus


def test_modulus_size():
    keypair = generate_keypair("size-check", bits=512)
    assert 500 <= keypair.public.bits <= 512


def test_fingerprint_stability_and_uniqueness():
    a = generate_keypair("fp-a").public
    b = generate_keypair("fp-b").public
    assert a.fingerprint() == a.fingerprint()
    assert a.fingerprint() != b.fingerprint()


def test_equal_public_keys():
    a = generate_keypair("eq").public
    b = generate_keypair("eq").public
    assert a == b and hash(a) == hash(b)


def test_keypair_rejects_equal_primes():
    with pytest.raises(ValueError):
        RsaKeyPair(13, 13)


def test_tiny_modulus_rejected():
    with pytest.raises(ValueError):
        generate_keypair("tiny", bits=64)
