"""Trace log recording and querying."""

from repro.sim import Kernel


def _populated_kernel():
    kernel = Kernel(seed=0)
    kernel.trace.record("alice", "login", "server-1")
    kernel.clock.advance_to(10.0)
    kernel.trace.record("bob", "login", "server-1")
    kernel.clock.advance_to(20.0)
    kernel.trace.record("alice", "flame.upload", "server-2", size=100)
    kernel.trace.record("alice", "flame.suicide")
    return kernel


def test_records_carry_time_and_detail():
    kernel = _populated_kernel()
    record = kernel.trace.query(action="flame.upload")[0]
    assert record.time == 20.0
    assert record.detail == {"size": 100}
    assert record.target == "server-2"


def test_query_by_actor_and_action():
    trace = _populated_kernel().trace
    assert len(trace.query(actor="alice")) == 3
    assert len(trace.query(action="login")) == 2
    assert len(trace.query(actor="alice", action="login")) == 1


def test_prefix_query_with_star():
    trace = _populated_kernel().trace
    assert len(trace.query(action="flame.*")) == 2
    assert trace.count(action="flame.*") == 2


def test_query_time_window():
    trace = _populated_kernel().trace
    assert len(trace.query(since=5.0, until=15.0)) == 1
    assert len(trace.query(since=20.0)) == 2


def test_first_and_last():
    trace = _populated_kernel().trace
    assert trace.first(actor="alice").action == "login"
    assert trace.last(actor="alice").action == "flame.suicide"
    assert trace.first(actor="nobody") is None


def test_target_filter_with_none_target():
    trace = _populated_kernel().trace
    # flame.suicide has no target; a target filter must not match it.
    assert trace.query(target="server-1", action="flame.suicide") == []


def test_target_filter_honours_trailing_star_prefix():
    """Regression: ``target`` filters use the same trailing-``*``
    prefix syntax as ``actor``/``action`` — the figure exporters rely
    on filtering by hostname family (``target="server-*"``)."""
    trace = _populated_kernel().trace
    assert len(trace.query(target="server-*")) == 3
    assert len(trace.query(target="server-1*")) == 2
    assert len(trace.query(actor="alice", target="server-*")) == 2
    assert trace.count(target="nomatch-*") == 0
    # A record with no target never matches, even the match-all prefix.
    assert len(trace.query(target="*")) == 3
    assert trace.first(target="server-2*").detail == {"size": 100}


def test_actions_and_timeline():
    trace = _populated_kernel().trace
    assert "flame.upload" in trace.actions()
    timeline = trace.timeline(actor="bob")
    assert timeline == [(10.0, "bob", "login", "server-1")]


def test_dump_and_len():
    trace = _populated_kernel().trace
    assert len(trace) == 4
    text = trace.dump(limit=2)
    assert "alice" in text and text.count("\n") == 1


def test_bounded_mode_evicts_oldest_records():
    kernel = Kernel(seed=0)
    trace = kernel.trace
    trace.bound(100)
    assert trace.max_records == 100
    for index in range(1000):
        kernel.clock.advance_to(float(index))
        trace.record("actor-%d" % (index % 7), "act-%d" % (index % 13),
                     "host-%d" % index)
    assert len(trace) <= 100
    assert trace.evicted_records + len(trace) == trace.total_records
    assert trace.total_records == 1000
    # Only the newest records survive, in append order.
    times = [record.time for record in trace]
    assert times == sorted(times)
    assert times[-1] == 999.0
    # Queries see exactly the retained history (linear reference agrees).
    for filters in ({"actor": "actor-3"}, {"action": "act-*"},
                    {"since": 950.0}, {"target": "host-99*"}):
        assert trace.query(**filters) == trace.query_linear(**filters)
    assert trace.actions() == {record.action for record in trace}


def test_bounded_mode_validation_and_unbounding():
    import pytest

    kernel = Kernel(seed=0)
    with pytest.raises(ValueError):
        kernel.trace.bound(0)
    with pytest.raises(TypeError):
        kernel.trace.bound(50.0)
    with pytest.raises(TypeError):
        kernel.trace.bound(True)
    kernel.trace.bound(10)
    kernel.trace.bound(None)  # cap removed; nothing else changes
    assert kernel.trace.max_records is None


def test_kernel_trace_max_records_kwarg():
    kernel = Kernel(seed=0, trace_max_records=50)
    for index in range(200):
        kernel.trace.record("a", "act", "t-%d" % index)
    assert len(kernel.trace) <= 50
    assert kernel.trace.evicted_records == 200 - len(kernel.trace)


def test_query_linear_is_the_documented_reference():
    trace = _populated_kernel().trace
    for filters in ({}, {"actor": "alice"}, {"action": "flame.*"},
                    {"target": "server-*"}, {"since": 5.0, "until": 15.0}):
        assert trace.query(**filters) == trace.query_linear(**filters)
