"""Bluetooth intelligence: social graphs and co-location."""

import pytest

from repro.analysis import (
    build_social_graph,
    colocated_victims,
    decode_bluetooth_entries,
    victims_linked_through_contacts,
)
from repro.bluetooth import BluetoothDevice, BluetoothNeighborhood
from repro.malware.flame.beetlejuice import run_beetlejuice


def _harvest(kernel, host_factory, shared_contact="contact-shared"):
    neighborhood = BluetoothNeighborhood(kernel)
    harvests = []
    for index in range(2):
        victim = host_factory("VICTIM-%d" % index, has_bluetooth=True)
        phone = BluetoothDevice(
            "phone-%d" % index, owner="owner-%d" % index,
            address_book=[shared_contact, "private-%d" % index],
        )
        neighborhood.place_device(victim, phone)
        entry = run_beetlejuice(victim, neighborhood)
        harvests.append({"entry": entry, "victim": victim})
    return neighborhood, harvests


def test_decode_bluetooth_entries(kernel, host_factory):
    _, harvests = _harvest(kernel, host_factory)
    fake_intel = [{"data": h["entry"]} for h in harvests]
    fake_intel.append({"data": b"not json"})
    fake_intel.append({"data": b'{"kind": "sysinfo"}'})
    decoded = decode_bluetooth_entries(fake_intel)
    assert len(decoded) == 2
    assert all(d["kind"] == "bluetooth" for d in decoded)


def test_social_graph_links_victims_via_shared_contact(kernel, host_factory):
    _, harvests = _harvest(kernel, host_factory)
    decoded = decode_bluetooth_entries([{"data": h["entry"]}
                                        for h in harvests])
    graph = build_social_graph(decoded)
    kinds = {d["kind"] for _, d in graph.nodes(data=True)}
    assert kinds == {"victim", "owner", "contact"}
    linked = victims_linked_through_contacts(graph)
    assert ("VICTIM-0", "VICTIM-1", 4) in linked  # via owners + contact


def test_social_graph_isolated_victims_not_linked(kernel, host_factory):
    neighborhood = BluetoothNeighborhood(kernel)
    harvests = []
    for index in range(2):
        victim = host_factory("ISO-%d" % index, has_bluetooth=True)
        phone = BluetoothDevice("p-%d" % index, owner="o-%d" % index,
                                address_book=["only-%d" % index])
        neighborhood.place_device(victim, phone)
        harvests.append({"data": run_beetlejuice(victim, neighborhood)})
    graph = build_social_graph(decode_bluetooth_entries(harvests))
    assert victims_linked_through_contacts(graph) == []


def test_colocation_from_shared_witness(kernel, host_factory):
    neighborhood = BluetoothNeighborhood(kernel)
    a = host_factory("CO-A", has_bluetooth=True)
    b = host_factory("CO-B", has_bluetooth=True)
    c = host_factory("FAR-C", has_bluetooth=True)
    witness = BluetoothDevice("cafe-phone")
    neighborhood.place_device(a, witness)
    neighborhood.place_device(b, witness)
    neighborhood.place_device(c, BluetoothDevice("other-phone"))
    for host in (a, b, c):
        neighborhood.start_beacon(host)
    pairs = colocated_victims(neighborhood)
    assert ("CO-A", "CO-B") in pairs
    assert not any("FAR-C" in pair for pair in pairs)
