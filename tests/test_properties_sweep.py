"""Property-based tests: the sweep engine's aggregation and scheduling.

The statistics the ensemble reports (mean/stddev/percentiles/CI) are
what turns the paper's single-trajectory anecdotes into defensible
distributions, so they get invariant-level scrutiny: percentile
monotonicity, mean bounded by the sample extremes, confidence intervals
that shrink as replicas accumulate, and explicit empty/single-replica
behaviour.

The scheduling layer gets the same treatment: chunk assignment must
dispatch every replica index exactly once under arbitrary chunking and
supervisor-style re-splitting, the adaptive fallback decision must be a
pure function of its inputs, the warm-pool row codec must round-trip
arbitrary replica payloads exactly, and ``SweepResult.merge_replicas``
must drop its memoised aggregates even when the merged rows came
through the codec.
"""

import math
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ensemble import (
    ReplicaResult,
    aggregate,
    percentile,
    replica_seed,
    summarize,
)
from repro.sim.sweep import (
    PARALLEL_BREAK_EVEN_SECONDS,
    SweepResult,
    adaptive_chunk_size,
    shard_chunks,
    should_fallback,
)
from repro.sim.workerpool import decode_replica_row, encode_replica_row

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)

samples = st.lists(finite, min_size=1, max_size=200)


def tolerance(value):
    """Float-rounding slack for comparisons against ``value``."""
    return 1e-9 * (1.0 + abs(value))


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_percentiles_are_monotonic(values):
    stats = summarize(values)
    ladder = [stats["min"], stats["p5"], stats["p25"], stats["p50"],
              stats["p75"], stats["p95"], stats["max"]]
    for low, high in zip(ladder, ladder[1:]):
        assert low <= high + tolerance(high)


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_mean_lies_within_min_and_max(values):
    stats = summarize(values)
    assert stats["min"] - tolerance(stats["min"]) <= stats["mean"]
    assert stats["mean"] <= stats["max"] + tolerance(stats["max"])


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_stddev_and_ci_are_nonnegative_and_consistent(values):
    stats = summarize(values)
    assert stats["stddev"] >= 0.0
    assert stats["ci95"] >= 0.0
    assert stats["ci_low"] <= stats["mean"] <= stats["ci_high"]
    assert stats["n"] == len(values)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=100))
def test_ci_shrinks_as_replicas_accumulate(values):
    """Doubling the sample (same empirical distribution) tightens the CI.

    Sample stddev cannot grow when every point is duplicated, and n
    doubles, so the normal-approximation half-width must shrink (or
    stay zero for degenerate samples).
    """
    single = summarize(values)
    doubled = summarize(values + values)
    assert doubled["ci95"] <= single["ci95"] + tolerance(single["ci95"])
    if single["stddev"] > 1e-6:
        assert doubled["ci95"] < single["ci95"]


def test_summarize_rejects_an_empty_ensemble():
    with pytest.raises(ValueError):
        summarize([])


@settings(max_examples=50, deadline=None)
@given(value=finite)
def test_single_replica_collapses_every_statistic(value):
    stats = summarize([value])
    for key in ("mean", "min", "max", "p5", "p25", "p50", "p75", "p95",
                "ci_low", "ci_high"):
        assert stats[key] == pytest.approx(value)
    assert stats["stddev"] == 0.0
    assert stats["ci95"] == 0.0
    assert stats["n"] == 1


@settings(max_examples=50, deadline=None)
@given(values=samples)
def test_percentile_endpoints_are_the_extremes(values):
    ordered = sorted(values)
    assert percentile(ordered, 0) == pytest.approx(ordered[0])
    assert percentile(ordered, 100) == pytest.approx(ordered[-1])
    assert percentile(ordered, 50) == pytest.approx(summarize(values)["p50"])


def test_percentile_input_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_aggregate_of_empty_ensemble_is_empty():
    assert aggregate([]) == {}


def test_aggregate_keeps_numeric_keys_and_drops_strings():
    replicas = [
        {"destroyed": 3, "tripped": True, "first_wipe_at": "2012-08-15"},
        {"destroyed": 5, "tripped": False, "first_wipe_at": "2012-08-15"},
    ]
    stats = aggregate(replicas)
    assert set(stats) == {"destroyed", "tripped"}
    assert stats["destroyed"]["n"] == 2
    assert stats["destroyed"]["mean"] == pytest.approx(4.0)
    # Booleans aggregate as 0/1 fractions.
    assert stats["tripped"]["mean"] == pytest.approx(0.5)


def test_aggregate_handles_keys_missing_from_some_replicas():
    stats = aggregate([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
    assert stats["a"]["n"] == 2
    assert stats["b"]["n"] == 1


@settings(max_examples=50, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=50))
def test_stddev_matches_the_textbook_formula(values):
    stats = summarize(values)
    mean = sum(values) / len(values)
    expected = math.sqrt(sum((v - mean) ** 2 for v in values)
                         / (len(values) - 1))
    assert stats["stddev"] == pytest.approx(expected, rel=1e-6, abs=1e-6)


# -- scheduling: chunking, re-splitting, fallback, row codec -------------------

#: Resume pending sets are arbitrary unique index lists — neither
#: zero-based nor contiguous.
index_sets = st.lists(st.integers(min_value=0, max_value=999),
                      unique=True, min_size=1, max_size=40)


@settings(max_examples=100, deadline=None)
@given(indices=index_sets, chunk=st.integers(min_value=1, max_value=17))
def test_chunking_dispatches_every_index_exactly_once(indices, chunk):
    chunks = shard_chunks(indices, chunk)
    assert [index for piece in chunks for index in piece] == indices
    assert all(1 <= len(piece) <= chunk for piece in chunks)
    # Chunk assignment is deterministic for a fixed config: same
    # input, same sharding, every time.
    assert chunks == shard_chunks(indices, chunk)


@settings(max_examples=60, deadline=None)
@given(indices=index_sets, chunk=st.integers(min_value=1, max_value=7),
       attempts_allowed=st.integers(min_value=1, max_value=3),
       data=st.data())
def test_resplitting_preserves_exactly_once_completion(indices, chunk,
                                                       attempts_allowed,
                                                       data):
    """Model of the supervisor's crash handling: a worker dying at an
    arbitrary position inside a chunk completes the prefix, charges the
    replica it was on one attempt (retried as a singleton chunk until
    its attempts run out, then quarantined), and re-queues the
    untouched tail as its own chunk.  Whatever crash schedule Hypothesis
    picks, every index must end up completed or quarantined exactly
    once."""
    queue = deque(shard_chunks(indices, chunk))
    attempts = {index: 0 for index in indices}
    completed = []
    quarantined = []
    while queue:
        current = queue.popleft()
        crash_at = data.draw(
            st.integers(min_value=0, max_value=len(current)),
            label="crash position")
        completed.extend(current[:crash_at])
        if crash_at == len(current):
            continue
        poison = current[crash_at]
        attempts[poison] += 1
        tail = current[crash_at + 1:]
        if tail:
            queue.appendleft(tail)
        if attempts[poison] >= attempts_allowed:
            quarantined.append(poison)
        else:
            queue.append([poison])
    assert sorted(completed + quarantined) == sorted(indices)
    assert len(completed) + len(quarantined) == len(indices)


@settings(max_examples=100, deadline=None)
@given(replicas=st.integers(min_value=1, max_value=1000),
       workers=st.integers(min_value=1, max_value=64),
       probe=st.one_of(st.none(),
                       st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False)))
def test_adaptive_chunk_sizing_is_pure_and_covering(replicas, workers,
                                                    probe):
    size = adaptive_chunk_size(replicas, workers, probe)
    assert size == adaptive_chunk_size(replicas, workers, probe)
    # Never coarser than the classic four-chunks-per-worker spread,
    # never below one.
    assert 1 <= size <= max(1, math.ceil(replicas / (workers * 4)))
    chunks = shard_chunks(range(replicas), size)
    assert [index for piece in chunks
            for index in piece] == list(range(replicas))


@settings(max_examples=100, deadline=None)
@given(replicas=st.integers(min_value=0, max_value=10_000),
       probe=st.one_of(st.none(),
                       st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False)),
       threshold=st.floats(min_value=1e-6, max_value=100.0,
                           allow_nan=False))
def test_fallback_decision_is_a_pure_threshold_function(replicas, probe,
                                                        threshold):
    decision = should_fallback(replicas, probe, threshold)
    assert decision == should_fallback(replicas, probe, threshold)
    if probe is None:
        assert decision is False
    else:
        assert decision == (replicas * probe < threshold)
    # The default threshold is the documented break-even constant.
    assert should_fallback(1, PARALLEL_BREAK_EVEN_SECONDS / 2.0) is True
    assert should_fallback(replicas, None) is False


json_scalar = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=20))

measurement_maps = st.dictionaries(st.text(max_size=20), json_scalar,
                                   max_size=8)

metric_maps = st.dictionaries(
    st.text(max_size=15),
    st.dictionaries(st.text(max_size=10), json_scalar, max_size=4),
    max_size=4)


@settings(max_examples=60, deadline=None)
@given(index=st.integers(min_value=0, max_value=99_999),
       base_seed=st.integers(min_value=0, max_value=1000),
       measurements=measurement_maps, metrics=metric_maps,
       digest=st.text(max_size=64),
       trace_records=st.integers(min_value=0, max_value=2**40),
       events=st.integers(min_value=0, max_value=2**40),
       sim_seconds=st.floats(min_value=0.0, max_value=1e9,
                             allow_nan=False),
       wall_seconds=st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False))
def test_replica_row_codec_round_trips_exactly(index, base_seed,
                                               measurements, metrics,
                                               digest, trace_records,
                                               events, sim_seconds,
                                               wall_seconds):
    replica = ReplicaResult(
        index=index, seed=replica_seed(base_seed, index),
        measurements=measurements, trace_digest=digest,
        trace_records=trace_records, events_dispatched=events,
        sim_seconds=sim_seconds, wall_seconds=wall_seconds,
        metrics=metrics)
    decoded = decode_replica_row(encode_replica_row(replica), base_seed)
    assert decoded.as_dict() == replica.as_dict()


def _codec_replica(index, value, base_seed=5):
    replica = ReplicaResult(
        index=index, seed=replica_seed(base_seed, index),
        measurements={"value": value}, trace_digest="digest-%04d" % index,
        trace_records=1, events_dispatched=1, sim_seconds=1.0,
        wall_seconds=0.0, metrics={})
    # The merge must behave identically for rows that came home through
    # the warm pool's binary codec, hence the round trip here.
    return decode_replica_row(encode_replica_row(replica), base_seed)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=12), data=st.data())
def test_merge_replicas_cache_invalidation_survives_codec_rows(values,
                                                               data):
    cut = data.draw(st.integers(min_value=1, max_value=len(values) - 1),
                    label="merge split")
    replicas = [_codec_replica(index, value)
                for index, value in enumerate(values)]
    result = SweepResult(spec=None, mode="parallel", workers=2,
                         chunk_size=1, base_seed=5,
                         replicas=replicas[:cut], wall_seconds=0.0)
    before = result.aggregate()
    assert result.aggregate() is before
    result.merge_replicas(replicas[cut:])
    after = result.aggregate()
    assert after is not before
    assert after["value"]["n"] == len(values)
    assert after == aggregate([replica.measurements
                               for replica in replicas])
    with pytest.raises(ValueError):
        result.merge_replicas([replicas[0]])
