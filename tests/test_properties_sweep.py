"""Property-based tests: the sweep engine's aggregation layer.

The statistics the ensemble reports (mean/stddev/percentiles/CI) are
what turns the paper's single-trajectory anecdotes into defensible
distributions, so they get invariant-level scrutiny: percentile
monotonicity, mean bounded by the sample extremes, confidence intervals
that shrink as replicas accumulate, and explicit empty/single-replica
behaviour.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ensemble import aggregate, percentile, summarize

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)

samples = st.lists(finite, min_size=1, max_size=200)


def tolerance(value):
    """Float-rounding slack for comparisons against ``value``."""
    return 1e-9 * (1.0 + abs(value))


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_percentiles_are_monotonic(values):
    stats = summarize(values)
    ladder = [stats["min"], stats["p5"], stats["p25"], stats["p50"],
              stats["p75"], stats["p95"], stats["max"]]
    for low, high in zip(ladder, ladder[1:]):
        assert low <= high + tolerance(high)


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_mean_lies_within_min_and_max(values):
    stats = summarize(values)
    assert stats["min"] - tolerance(stats["min"]) <= stats["mean"]
    assert stats["mean"] <= stats["max"] + tolerance(stats["max"])


@settings(max_examples=100, deadline=None)
@given(values=samples)
def test_stddev_and_ci_are_nonnegative_and_consistent(values):
    stats = summarize(values)
    assert stats["stddev"] >= 0.0
    assert stats["ci95"] >= 0.0
    assert stats["ci_low"] <= stats["mean"] <= stats["ci_high"]
    assert stats["n"] == len(values)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=100))
def test_ci_shrinks_as_replicas_accumulate(values):
    """Doubling the sample (same empirical distribution) tightens the CI.

    Sample stddev cannot grow when every point is duplicated, and n
    doubles, so the normal-approximation half-width must shrink (or
    stay zero for degenerate samples).
    """
    single = summarize(values)
    doubled = summarize(values + values)
    assert doubled["ci95"] <= single["ci95"] + tolerance(single["ci95"])
    if single["stddev"] > 1e-6:
        assert doubled["ci95"] < single["ci95"]


def test_summarize_rejects_an_empty_ensemble():
    with pytest.raises(ValueError):
        summarize([])


@settings(max_examples=50, deadline=None)
@given(value=finite)
def test_single_replica_collapses_every_statistic(value):
    stats = summarize([value])
    for key in ("mean", "min", "max", "p5", "p25", "p50", "p75", "p95",
                "ci_low", "ci_high"):
        assert stats[key] == pytest.approx(value)
    assert stats["stddev"] == 0.0
    assert stats["ci95"] == 0.0
    assert stats["n"] == 1


@settings(max_examples=50, deadline=None)
@given(values=samples)
def test_percentile_endpoints_are_the_extremes(values):
    ordered = sorted(values)
    assert percentile(ordered, 0) == pytest.approx(ordered[0])
    assert percentile(ordered, 100) == pytest.approx(ordered[-1])
    assert percentile(ordered, 50) == pytest.approx(summarize(values)["p50"])


def test_percentile_input_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_aggregate_of_empty_ensemble_is_empty():
    assert aggregate([]) == {}


def test_aggregate_keeps_numeric_keys_and_drops_strings():
    replicas = [
        {"destroyed": 3, "tripped": True, "first_wipe_at": "2012-08-15"},
        {"destroyed": 5, "tripped": False, "first_wipe_at": "2012-08-15"},
    ]
    stats = aggregate(replicas)
    assert set(stats) == {"destroyed", "tripped"}
    assert stats["destroyed"]["n"] == 2
    assert stats["destroyed"]["mean"] == pytest.approx(4.0)
    # Booleans aggregate as 0/1 fractions.
    assert stats["tripped"]["mean"] == pytest.approx(0.5)


def test_aggregate_handles_keys_missing_from_some_replicas():
    stats = aggregate([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
    assert stats["a"]["n"] == 2
    assert stats["b"]["n"] == 1


@settings(max_examples=50, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=50))
def test_stddev_matches_the_textbook_formula(values):
    stats = summarize(values)
    mean = sum(values) / len(values)
    expected = math.sqrt(sum((v - mean) ** 2 for v in values)
                         / (len(values) - 1))
    assert stats["stddev"] == pytest.approx(expected, rel=1e-6, abs=1e-6)
