"""Lua stdlib: print, table, string, math, type conversion."""

from repro.luavm import LuaVM


def run(source):
    vm = LuaVM()
    vm.run(source)
    return vm


def test_print_captured():
    vm = run("print('a', 1, true, nil)")
    assert vm.output == ["a\t1\ttrue\tnil"]


def test_tostring_and_tonumber():
    vm = run("""
    a = tostring(1.0)
    b = tonumber('42')
    c = tonumber('3.5')
    d = tonumber('nope')
    """)
    assert vm.get_global("a") == "1"
    assert vm.get_global("b") == 42
    assert vm.get_global("c") == 3.5
    assert vm.get_global("d") is None


def test_type():
    vm = run("""
    a = type(nil) b = type(true) c = type(1) d = type('s')
    e = type({}) f = type(print)
    """)
    assert [vm.get_global(x) for x in "abcdef"] == [
        "nil", "boolean", "number", "string", "table", "function"]


def test_table_insert_remove_concat():
    vm = run("""
    t = {}
    table.insert(t, 'a')
    table.insert(t, 'b')
    table.insert(t, 'c')
    removed = table.remove(t, 2)
    last = table.remove(t)
    joined = table.concat(t, '-')
    n = #t
    """)
    assert vm.get_global("removed") == "b"
    assert vm.get_global("last") == "c"
    assert vm.get_global("joined") == "a"
    assert vm.get_global("n") == 1


def test_table_remove_empty():
    vm = run("t = {} x = table.remove(t)")
    assert vm.get_global("x") is None


def test_string_functions():
    vm = run("""
    a = string.len('hello')
    b = string.sub('hello', 2, 4)
    c = string.sub('hello', -3)
    d = string.upper('abc')
    e = string.lower('ABC')
    f = string.find('filename.docx', '.docx')
    g = string.find('filename.docx', '.pdf')
    h = string.format('%s=%d', 'x', 7)
    i = string.rep('ab', 3)
    """)
    assert vm.get_global("a") == 5
    assert vm.get_global("b") == "ell"
    assert vm.get_global("c") == "llo"
    assert vm.get_global("d") == "ABC"
    assert vm.get_global("e") == "abc"
    assert vm.get_global("f") == 9
    assert vm.get_global("g") is None
    assert vm.get_global("h") == "x=7"
    assert vm.get_global("i") == "ababab"


def test_string_format_coerces_integral_floats():
    vm = run("x = string.format('%d', 3.0)")
    assert vm.get_global("x") == "3"


def test_math_functions():
    vm = run("""
    a = math.floor(3.7)
    b = math.ceil(3.2)
    c = math.abs(-5)
    d = math.max(1, 9, 4)
    e = math.min(1, 9, 4)
    """)
    assert vm.get_global("a") == 3
    assert vm.get_global("b") == 4
    assert vm.get_global("c") == 5
    assert vm.get_global("d") == 9
    assert vm.get_global("e") == 1
