"""Malware-level resilience: rotation, failover, retry, USB fallback.

These tests exercise the behaviours the paper attributes to each
family against *injected* infrastructure failures: Flame rotates its
domain list and falls back to the hidden USB database, Stuxnet fails
over between its two futbol domains and backs off through outages,
Shamoon's reporter retries and degrades to a lost report while the
wipe proceeds regardless.
"""

import pytest

from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from repro.malware.shamoon import Shamoon, ShamoonConfig
from repro.malware.shamoon.reporter import ShamoonReportSink
from repro.malware.stuxnet import Stuxnet, StuxnetConfig
from repro.malware.stuxnet.cnc import STUXNET_DOMAINS, StuxnetCncService
from repro.netsim import Internet, Lan
from repro.netsim.http import HttpResponse, HttpServer
from repro.sim import RetryPolicy
from repro.usb.drive import UsbDrive

DAY = 86400.0


# -- Flame: domain rotation under takedown -------------------------------------

@pytest.fixture
def rotation_world(kernel, world, host_factory):
    """Two C&C servers, two domains each; clients default to one of each."""
    internet = Internet(kernel)
    center = AttackCenter(kernel)
    addresses = {}
    for name, domains in (("srv-a", ["a1.example.com", "a2.example.com"]),
                          ("srv-b", ["b1.example.com", "b2.example.com"])):
        server = CncServer(kernel, name, center.coordinator_public_key,
                           extra_domains=domains[1:])
        addresses[name] = center.provision_server(server, internet, domains)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("ROT-V")
    lan.attach(victim)
    victim.vfs.write("c:\\users\\u\\documents\\secret.docx", b"S" * 300)
    return {"internet": internet, "center": center, "lan": lan,
            "victim": victim, "pki": world}


def _flame(kernel, rotation_world, **config_kwargs):
    config = FlameConfig(enable_wu_mitm=False, enable_bluetooth=False,
                        beacon_interval=3600.0, collect_interval=4 * 3600.0,
                        **config_kwargs)
    return Flame(kernel, rotation_world["pki"],
                 default_domains=["a1.example.com", "b1.example.com"],
                 coordinator_public_key=rotation_world["center"].coordinator_public_key,
                 config=config)


def test_rotation_survives_takedown_of_primary(kernel, rotation_world):
    flame = _flame(kernel, rotation_world)
    flame.infect(rotation_world["victim"], via="initial")
    kernel.run_for(1.0 * DAY)
    before = flame.stats["entries_uploaded"]
    assert before > 0
    # Researchers seize server A's entire presence.
    kernel.faults.inject_takedown("a1.example.com")
    kernel.faults.inject_takedown("a2.example.com")
    kernel.run_for(2.0 * DAY)
    # Rotation walked to the b-family; exfil continued.
    assert flame.stats["entries_uploaded"] > before
    assert not flame._states["ROT-V"].cnc_unreachable


def test_pinned_client_dies_with_its_single_domain(kernel, rotation_world):
    flame = _flame(kernel, rotation_world, rotate_domains=False,
                   retry_policy=RetryPolicy(max_attempts=1))
    flame.infect(rotation_world["victim"], via="initial")
    kernel.run_for(1.0 * DAY)
    before = flame.stats["entries_uploaded"]
    assert before > 0
    kernel.faults.inject_takedown("a1.example.com")
    kernel.run_for(2.0 * DAY)
    # b1 is alive and in the default list, but the pinned client never
    # rotates to it: this is the resilience gap the 80-domain fleet buys.
    assert flame.stats["entries_uploaded"] == before
    assert flame._states["ROT-V"].cnc_unreachable


def test_retry_bridges_a_short_outage_within_one_beacon(kernel,
                                                        rotation_world):
    flame = _flame(kernel, rotation_world, retry_policy=RetryPolicy(
        max_attempts=3, base_delay=1200.0, multiplier=2.0, jitter=0.0))
    flame.infect(rotation_world["victim"], via="initial")
    kernel.run_for(0.5 * DAY)
    before = flame.stats["entries_uploaded"]
    # Both server addresses dark for 30 minutes starting just before a
    # beacon: the first attempt fails, a backoff attempt lands after.
    for address in rotation_world["internet"]._sites:
        kernel.faults.inject_outage(address, duration=1800.0)
    kernel.run_for(0.5 * DAY)
    assert flame.stats["entries_uploaded"] > before
    assert kernel.trace.count(actor="retry", action="retry-succeeded") >= 1


def test_usb_fallback_carries_backlog_to_live_deployment(kernel,
                                                         rotation_world,
                                                         host_factory):
    """All of client A's domains die; the backlog exits on a stick via a
    second deployment whose (newer) domains still resolve."""
    flame_a = _flame(kernel, rotation_world)
    flame_a.default_domains = ["a1.example.com", "a2.example.com"]
    victim = rotation_world["victim"]
    flame_a.infect(victim, via="initial")

    flame_b = _flame(kernel, rotation_world)
    flame_b.default_domains = ["b1.example.com", "b2.example.com"]
    carrier = host_factory("ROT-C")
    rotation_world["lan"].attach(carrier)
    flame_b.infect(carrier, via="initial")

    kernel.run_for(1.0 * DAY)
    kernel.faults.inject_takedown("a1.example.com")
    kernel.faults.inject_takedown("a2.example.com")
    kernel.run_for(2.0 * DAY)  # retries exhaust; backlog accumulates
    state = flame_a._states[victim.hostname]
    assert state.cnc_unreachable
    assert state.pending_entries

    stick = UsbDrive("courier")
    victim.insert_usb(stick)
    assert flame_a.stats["fallback_entries"] > 0
    victim.remove_usb(stick)
    carrier.insert_usb(stick)
    assert flame_b.stats["courier_documents"] > 0


def test_usb_fallback_respects_disable_flag(kernel, rotation_world):
    flame = _flame(kernel, rotation_world, enable_usb_fallback=False,
                   retry_policy=RetryPolicy(max_attempts=1))
    victim = rotation_world["victim"]
    flame.infect(victim, via="initial")
    kernel.run_for(0.5 * DAY)
    kernel.faults.inject_takedown_campaign(
        ["a1.example.com", "a2.example.com",
         "b1.example.com", "b2.example.com"])
    kernel.run_for(1.0 * DAY)
    assert flame._states[victim.hostname].cnc_unreachable
    stick = UsbDrive("courier")
    victim.insert_usb(stick)
    assert flame.stats["fallback_entries"] == 0


def test_courier_keeps_cargo_when_flush_host_is_also_cut_off(kernel,
                                                             rotation_world,
                                                             host_factory):
    flame = _flame(kernel, rotation_world)
    victim = rotation_world["victim"]
    flame.infect(victim, via="initial")
    other = host_factory("ROT-O")
    rotation_world["lan"].attach(other)
    flame.infect(other, via="initial")
    kernel.run_for(1.0 * DAY)
    kernel.faults.inject_takedown_campaign(
        ["a1.example.com", "a2.example.com",
         "b1.example.com", "b2.example.com"])
    kernel.run_for(2.0 * DAY)
    stick = UsbDrive("courier")
    victim.insert_usb(stick)
    stored = flame.stats["fallback_entries"]
    assert stored > 0
    victim.remove_usb(stick)
    # The second host's rotation is just as dead: nothing uploads, the
    # original cargo survives, and the second host piles its own backlog
    # onto the same courier.
    other.insert_usb(stick)
    assert flame.stats["courier_documents"] == 0
    from repro.usb.hidden_db import HiddenDatabase
    assert len(HiddenDatabase(stick).documents()) >= stored


# -- Stuxnet: futbol-domain failover -------------------------------------------

@pytest.fixture
def stuxnet_world(kernel, world, host_factory):
    internet = Internet(kernel)
    probe = HttpServer("wu")
    probe.route("/", lambda r: HttpResponse(200, b"ok"))
    internet.register_site("www.windowsupdate.com", probe)
    service = StuxnetCncService(internet)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("STX-V", os_version="xp")
    lan.attach(victim)
    return {"internet": internet, "service": service, "lan": lan,
            "victim": victim, "pki": world}


def test_stuxnet_fails_over_to_second_futbol_domain(kernel, stuxnet_world):
    kernel.faults.inject_takedown(STUXNET_DOMAINS[0])
    stux = Stuxnet(kernel, stuxnet_world["pki"],
                   cnc_service=stuxnet_world["service"])
    stux.infect(stuxnet_world["victim"], via="initial")
    kernel.run_for(2.0 * DAY)
    assert stuxnet_world["service"].victim_reports
    assert kernel.trace.count(actor="STX-V", action="stuxnet-cnc-failover") >= 1
    assert "STX-V" not in stux.cnc_unreachable_hosts


def test_stuxnet_without_failover_loses_contact(kernel, stuxnet_world):
    kernel.faults.inject_takedown(STUXNET_DOMAINS[0])
    stux = Stuxnet(kernel, stuxnet_world["pki"],
                   cnc_service=stuxnet_world["service"],
                   config=StuxnetConfig(cnc_failover=False,
                                        spread_over_network=False))
    stux.infect(stuxnet_world["victim"], via="initial")
    kernel.run_for(2.0 * DAY)
    assert not stuxnet_world["service"].victim_reports
    assert "STX-V" in stux.cnc_unreachable_hosts


def test_stuxnet_retry_rides_out_short_blackout(kernel, stuxnet_world):
    # Both domains dark across the first beacon; the backoff attempt
    # lands after the window closes.
    for domain in STUXNET_DOMAINS:
        kernel.faults.inject_dns_blackout(domain, start=0.0,
                                          duration=1.05 * DAY)
    stux = Stuxnet(kernel, stuxnet_world["pki"],
                   cnc_service=stuxnet_world["service"],
                   config=StuxnetConfig(
                       spread_over_network=False,
                       retry_policy=RetryPolicy(max_attempts=3,
                                                base_delay=3 * 3600.0,
                                                multiplier=2.0, jitter=0.0)))
    stux.infect(stuxnet_world["victim"], via="initial")
    kernel.run_for(1.5 * DAY)
    assert stuxnet_world["service"].victim_reports


# -- Shamoon: reporter retry and graceful loss ---------------------------------

@pytest.fixture
def shamoon_world(kernel, world, host_factory):
    internet = Internet(kernel)
    sink = ShamoonReportSink()
    address = internet.register_site("report.example.com", sink.server)
    lan = Lan(kernel, "org", internet=internet, domain_name="org.com")
    victim = host_factory("SHM-V", file_and_print_sharing=True)
    lan.attach(victim)
    victim.vfs.write("c:\\users\\u\\documents\\doc.docx", b"D" * 5000)
    return {"internet": internet, "sink": sink, "sink_address": address,
            "lan": lan, "victim": victim, "pki": world}


def _shamoon(kernel, shamoon_world, **config_kwargs):
    config = ShamoonConfig(report_domain="report.example.com",
                           **config_kwargs)
    return Shamoon(kernel, shamoon_world["pki"],
                   shamoon_world["lan"].domain_admin_credential, config)


def test_report_retries_through_sink_outage(kernel, shamoon_world):
    sham = _shamoon(kernel, shamoon_world, report_retry=RetryPolicy(
        max_attempts=4, base_delay=600.0, multiplier=2.0, jitter=0.0))
    sham.infect(shamoon_world["victim"], via="initial")
    # The sink is dark when the wiper fires but recovers 30 min later.
    trigger_at = kernel.clock.seconds_until(sham.config.trigger)
    kernel.faults.inject_outage(shamoon_world["sink_address"],
                                start=trigger_at - 60.0, duration=1800.0)
    kernel.run_for(trigger_at + DAY)
    assert sham.wiped_hosts  # the wipe never waited on the report
    assert sham.reports_sent == 1
    assert sham.reports_lost == 0
    assert shamoon_world["sink"].total_files_reported() > 0


def test_report_marked_lost_when_sink_never_returns(kernel, shamoon_world):
    sham = _shamoon(kernel, shamoon_world)
    sham.infect(shamoon_world["victim"], via="initial")
    kernel.faults.inject_takedown("report.example.com")
    trigger_at = kernel.clock.seconds_until(sham.config.trigger)
    kernel.run_for(trigger_at + DAY)
    # Degraded success: the host is wiped, the telemetry is gone.
    assert sham.wiped_hosts
    assert sham.reports_sent == 0
    assert sham.reports_lost == 1
    assert kernel.trace.count(actor="shamoon", action="report-lost") == 1
