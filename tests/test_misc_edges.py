"""Edge cases across modules that no single suite owns."""

import pytest


def test_periodic_task_jitter_stays_positive(kernel):
    ticks = []
    kernel.every(10.0, lambda: ticks.append(kernel.now), jitter=9.9)
    kernel.run(until=200.0)
    assert len(ticks) >= 10
    deltas = [b - a for a, b in zip(ticks, ticks[1:])]
    assert all(delta > 0 for delta in deltas)


def test_pe_resource_language_round_trip():
    from repro.pe import PeBuilder, parse_pe

    builder = PeBuilder()
    builder.add_resource("L1", b"x", language=0x0401)  # Arabic
    pe = parse_pe(builder.build())
    assert pe.resource("L1").language == 0x0401


def test_resource_requires_name():
    from repro.pe import Resource

    with pytest.raises(ValueError):
        Resource("", b"")


def test_vfs_attributes_survive_overwrite(host):
    record = host.vfs.write("c:\\keep.txt", b"1", hidden=True)
    created = record.attributes.created
    host.kernel.clock.advance_to(100.0)
    updated = host.vfs.write("c:\\keep.txt", b"2")
    assert updated.attributes.created == created
    assert updated.attributes.modified == 100.0


def test_flame_operator_console_ignores_garbage_entries():
    from repro.malware.flame.operator import FlameOperatorConsole

    class FakeCenter:
        recovered_intelligence = [
            {"data": b"\x00\x01binary-noise"},
            {"data": b"{\"kind\": \"weird\"}"},
        ]

        def harvest(self):
            return 0

        def coordinator_decrypt_backlog(self):
            return 0

        def push_command(self, *a, **k):
            raise AssertionError("nothing should be tasked")

    console = FlameOperatorConsole(FakeCenter())
    result = console.review_cycle()
    assert result["clients_tasked"] == 0


def test_trace_record_repr_and_event_repr(kernel):
    record = kernel.trace.record("a", "act", "t", k=1)
    assert "act" in repr(record)
    event = kernel.call_later(5.0, lambda: None, "labelled")
    assert "labelled" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_host_config_defaults_are_hardened():
    from repro.winsim import HostConfig

    config = HostConfig()
    assert config.enforce_driver_signatures
    assert not config.autorun_enabled
    assert not config.file_and_print_sharing


def test_lan_ip_of_unattached_host_raises(kernel, host_factory):
    from repro.netsim import Lan
    from repro.netsim.network import NetworkError

    lan = Lan(kernel, "l")
    with pytest.raises(NetworkError):
        lan.ip_of(host_factory("X"))


def test_shamoon_wiper_name_pool_is_stable(kernel, world, host_factory):
    """Two deployments with the same seed pick the same wiper names."""
    from repro.malware.shamoon import Shamoon, ShamoonConfig, WIPER_NAME_POOL
    from repro.netsim import Lan

    names = []
    for attempt in range(2):
        from repro.sim import Kernel

        k = Kernel(seed=77)
        lan = Lan(k, "org")
        host_cls = host_factory("H%d" % attempt).__class__
        host = host_cls(k, "SAME-NAME", world.make_trust_store())
        lan.attach(host)
        sham = Shamoon(k, world, lan.domain_admin_credential,
                       ShamoonConfig())
        sham.infect(host, via="initial")
        dropped = [f.name for f in host.vfs.list_dir(host.system_dir,
                                                     raw=True)
                   if f.name[:-4] in WIPER_NAME_POOL]
        names.append(dropped)
    assert names[0] == names[1]
