"""Integration tests: the three turn-key campaigns (scaled down)."""

import pytest

from repro import (
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
)


@pytest.fixture(scope="module")
def stuxnet_result():
    campaign = StuxnetNatanzCampaign(seed=7, centrifuge_count=200,
                                     workstation_count=2, duration_days=120)
    return campaign.run()


@pytest.fixture(scope="module")
def flame_result():
    campaign = FlameEspionageCampaign(seed=8, victim_count=6,
                                      domain_count=20, server_count=4,
                                      duration_weeks=2, docs_per_host=5)
    return campaign.run(suicide_at_end=True)


@pytest.fixture(scope="module")
def shamoon_result():
    return ShamoonWiperCampaign(seed=9, host_count=60).run()


def test_stuxnet_kill_chain_completes(stuxnet_result):
    r = stuxnet_result
    assert r["infected_hosts"] >= 1
    assert r["payloads_armed"] == 1
    assert r["attack_cycles"] >= 2


def test_stuxnet_destroys_centrifuges_stealthily(stuxnet_result):
    r = stuxnet_result
    assert 0 < r["centrifuges_destroyed"] < r["centrifuges_total"]
    assert not r["safety_tripped"]
    assert r["operator_view_hz"] == pytest.approx(1064.0, abs=2)


def test_stuxnet_plc_rootkit_hides_blocks(stuxnet_result):
    r = stuxnet_result
    assert r["stux_blocks_on_plc"]            # really on the PLC
    assert r["stux_blocks_visible_to_engineer"] == []  # invisible via DLL


def test_flame_infects_lan_via_mitm(flame_result):
    r = flame_result
    assert r["victims_infected"] == 6
    assert "windows-update-mitm" in r["infection_vectors"]
    assert r["domains_registered"] == 20
    assert r["server_count"] == 4


def test_flame_two_phase_exfiltration_works(flame_result):
    r = flame_result
    assert r["stolen_bytes_total"] > 0
    assert r["metadata_reviews"] > 0
    assert r["files_requested"] > 0
    assert r["documents_recovered"] > 0


def test_flame_suicide_clears_fleet(flame_result):
    assert flame_result["active_infections"] == 0
    assert flame_result["footprint_bytes"] == 0


def test_shamoon_full_org_destruction(shamoon_result):
    r = shamoon_result
    assert r["hosts_wiped"] == 60
    assert r["hosts_usable_after"] == 0
    assert r["reports_received"] == 60
    assert r["first_wipe_at"].startswith("2012-08-15T08:08")


def test_shamoon_jpeg_bug_fraction(shamoon_result):
    # Only the upper part of the image lands: far below full coverage.
    assert 0 < shamoon_result["overwrite_fraction"] < 0.6


def test_campaigns_are_reproducible():
    a = ShamoonWiperCampaign(seed=11, host_count=12).run()
    b = ShamoonWiperCampaign(seed=11, host_count=12).run()
    assert a == b
