"""PLC, Profibus, Step 7, the trojanised DLL, and the safety system."""

import pytest

from repro.plc import (
    CentrifugeCascade,
    DigitalSafetySystem,
    FARARO_PAYA,
    FrequencyConverterDrive,
    ProfibusBus,
    ProgrammableLogicController,
    Step7Application,
    TrojanizedS7Library,
    VACON,
)
from repro.plc.blocks import CodeBlock
from repro.plc.centrifuge import NOMINAL_FREQUENCY


@pytest.fixture
def rig(kernel):
    bus = ProfibusBus()
    cascade_a = CentrifugeCascade("A", 10, rng=kernel.rng.fork("a"))
    cascade_b = CentrifugeCascade("B", 10, rng=kernel.rng.fork("b"))
    bus.attach(FrequencyConverterDrive("drv-a", FARARO_PAYA, cascade_a,
                                       kernel.clock))
    bus.attach(FrequencyConverterDrive("drv-b", VACON, cascade_b,
                                       kernel.clock))
    plc = ProgrammableLogicController(kernel, "PLC-1", bus)
    return {"bus": bus, "plc": plc,
            "cascades": (cascade_a, cascade_b)}


def test_code_block_kinds_validated():
    with pytest.raises(ValueError):
        CodeBlock("X", "ZZ")


def test_bus_vendors_and_devices(rig):
    assert rig["bus"].vendors() == sorted([FARARO_PAYA, VACON])
    assert len(rig["bus"].devices()) == 2
    with pytest.raises(KeyError):
        rig["bus"].command_frequency("ghost", 100)
    with pytest.raises(KeyError):
        rig["bus"].read_frequency("ghost")


def test_scan_cycle_drives_to_setpoint(kernel, rig):
    plc = rig["plc"].power_on()
    kernel.run_for(300.0)
    assert abs(plc.actual_frequency() - NOMINAL_FREQUENCY) < 1.0
    assert plc.scan_count >= 4
    plc.power_off()
    assert not plc.running


def test_control_suppression_stops_ob1(kernel, rig):
    plc = rig["plc"].power_on()
    kernel.run_for(120.0)
    plc.control_suppressed = True
    rig["bus"].command_all(1410.0)
    kernel.run_for(300.0)
    assert plc.actual_frequency() == 1410.0  # OB1 stood down


def test_reported_frequency_override(rig):
    plc = rig["plc"]
    rig["bus"].command_all(1410.0)
    assert plc.actual_frequency() == 1410.0
    plc.reported_frequency_override = NOMINAL_FREQUENCY
    assert plc.reported_frequency() == NOMINAL_FREQUENCY
    plc.reported_frequency_override = None
    assert plc.reported_frequency() == 1410.0


def test_block_storage_and_origins(rig):
    plc = rig["plc"]
    plc.store_block(CodeBlock("FC100", "FC", origin="engineer"))
    plc.store_block(CodeBlock("OB0_EVIL", "OB", origin="malware"))
    assert set(plc.block_names()) == {"FC100", "OB0_EVIL", "OB1"}
    assert [b.name for b in plc.blocks_with_origin("malware")] == ["OB0_EVIL"]
    assert plc.delete_block("FC100")
    assert not plc.delete_block("FC100")


def test_injected_ob_runs_before_ob1(kernel, rig):
    order = []
    plc = rig["plc"]
    plc.store_block(CodeBlock("OB0_FIRST", "OB",
                              logic=lambda p: order.append("injected")))
    plc.read_block("OB1").logic = lambda p: order.append("ob1")
    plc.power_on()
    kernel.run_for(61.0)
    assert order[:2] == ["injected", "ob1"]


def test_safety_system_trips_on_real_overspeed(kernel, rig):
    plc = rig["plc"]
    safety = DigitalSafetySystem(kernel, plc).arm()
    rig["bus"].command_all(1410.0)
    kernel.run_for(60.0)
    assert safety.tripped
    assert plc.actual_frequency() == 0.0  # emergency shutdown


def test_safety_system_blinded_by_replay(kernel, rig):
    plc = rig["plc"]
    safety = DigitalSafetySystem(kernel, plc).arm()
    plc.reported_frequency_override = NOMINAL_FREQUENCY
    rig["bus"].command_all(1410.0)
    kernel.run_for(3600.0)
    assert not safety.tripped
    assert safety.samples_taken > 0


def test_safety_ignores_powered_down_cascade(kernel, rig):
    safety = DigitalSafetySystem(kernel, rig["plc"]).arm()
    kernel.run_for(600.0)  # frequency 0.0 the whole time
    assert not safety.tripped
    safety.disarm()


def test_step7_roundtrip_and_hookability(kernel, host_factory, rig):
    host = host_factory("ENG", os_version="xp")
    step7 = Step7Application(host)
    assert "step7" in host.installed_software
    assert host.step7 is step7
    plc = rig["plc"]
    step7.write_block(plc, "FC7", kind="FC")
    assert "FC7" in step7.list_plc_blocks(plc)
    uploaded = step7.upload_block(plc, "FC7")
    assert uploaded.name == "FC7"
    assert uploaded is not plc.read_block("FC7")  # snapshot copy
    assert step7.monitor_frequency(plc) == plc.reported_frequency()


def test_step7_projects(host_factory):
    host = host_factory("ENG2", os_version="xp")
    step7 = Step7Application(host)
    project = step7.create_project("cascade", "c:\\projects\\cascade")
    assert step7.open_project("c:\\projects\\cascade") is project
    with pytest.raises(KeyError):
        step7.open_project("c:\\projects\\ghost")


def test_trojanized_library_hides_and_protects(rig):
    from repro.plc.s7otbx import S7CommunicationLibrary

    plc = rig["plc"]
    plc.store_block(CodeBlock("OB0_STUX", "OB", origin="stuxnet"))
    intercepts = []
    trojan = TrojanizedS7Library(S7CommunicationLibrary(), "stuxnet",
                                 on_intercept=lambda op, n: intercepts.append((op, n)))
    assert "OB0_STUX" not in trojan.list_blocks(plc)
    assert trojan.read_block(plc, "OB0_STUX") is None
    assert not trojan.delete_block(plc, "OB0_STUX")
    replacement = CodeBlock("OB0_STUX", "OB", origin="engineer")
    trojan.write_block(plc, replacement)
    assert plc.read_block("OB0_STUX").origin == "stuxnet"  # write swallowed
    assert {op for op, _ in intercepts} == {"list", "read", "delete", "write"}
    # Non-protected blocks pass through untouched.
    trojan.write_block(plc, CodeBlock("FC1", "FC"))
    assert trojan.read_block(plc, "FC1").name == "FC1"
