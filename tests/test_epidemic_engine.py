"""Units for the epidemic engine: pool, model, provider, tier seams.

The seam regressions at the bottom pin the latent winsim assumptions
the :class:`~repro.winsim.SimHost` interface extraction surfaced: the
network layers used to reach straight into ``host.config`` and
``host.vfs`` and would have crashed (or silently misbehaved) on any
host that wasn't a full ``WindowsHost``.  Now the contract is typed —
``Lan.attach`` validates the interface, and SMB probes capabilities
instead of attributes.
"""

import pytest

from repro.core import CampaignWorld
from repro.epidemic import (
    EXPOSED,
    EpidemicModel,
    HostPool,
    INFECTIOUS,
    RECOVERED,
    SUSCEPTIBLE,
    TransmissionProfile,
    assign_regions,
    demote_host,
    promote_host,
)
from repro.netsim import Lan
from repro.netsim.network import NetworkError
from repro.netsim.smb import SmbError, smb_accessible, smb_copy_file
from repro.sim import Kernel
from repro.sim.checkpoint import canonical_json
from repro.sim.errors import CheckpointError, SimulationError
from repro.winsim import SimHost, WindowsHost

REGIONS = (("east", 2.0), ("west", 1.0))


@pytest.fixture
def pool(kernel):
    return HostPool(20, REGIONS, kernel.rng.fork("pool"))


# -- region assignment --------------------------------------------------------

def test_assign_regions_is_deterministic_per_stream(kernel):
    one = assign_regions(kernel.rng.fork("r"), 50, REGIONS)
    two = assign_regions(Kernel(seed=1).rng.fork("r"), 50, REGIONS)
    assert list(one) == list(two)
    assert set(one) <= {0, 1}


def test_assign_regions_rejects_bad_weights(kernel):
    rng = kernel.rng.fork("r")
    with pytest.raises(ValueError):
        assign_regions(rng, 5, ())
    with pytest.raises(ValueError):
        assign_regions(rng, 5, (("a", -1.0), ("b", 2.0)))
    with pytest.raises(ValueError):
        assign_regions(rng, 5, (("a", 0.0),))


def test_region_weights_skew_assignment(kernel):
    regions = assign_regions(kernel.rng.fork("r"), 3000,
                             (("heavy", 9.0), ("light", 1.0)))
    heavy = sum(1 for code in regions if code == 0)
    assert 0.85 < heavy / 3000 < 0.95


# -- pool transitions ---------------------------------------------------------

def test_pool_lifecycle_updates_every_counter(pool):
    region = pool.region_of(4)
    code = pool.region_names.index(region)
    pool.expose(4, epoch=2, vector="usb")
    assert pool.counts == [19, 1, 0, 0]
    assert pool.vector_of(4) == "usb"
    assert pool.exposed_epoch_of(4) == 2
    pool.activate(4)
    assert pool.counts == [19, 0, 1, 0]
    assert pool.infectious_by_region[code] == 1
    pool.recover(4)
    assert pool.counts == [19, 0, 0, 1]
    assert pool.infectious_by_region[code] == 0
    assert pool.cumulative_infections() == 1
    assert pool.vector_counts == {"usb": 1}


def test_pool_rejects_illegal_transitions(pool):
    pool.seed(0)
    with pytest.raises(ValueError):
        pool.expose(0, epoch=1, vector="lan")   # already infectious
    with pytest.raises(ValueError):
        pool.activate(1)                         # still susceptible
    with pytest.raises(ValueError):
        pool.recover(1)
    with pytest.raises(ValueError):
        pool.expose(1, epoch=1, vector="carrier-pigeon")


def test_force_state_repairs_counters_both_ways(pool):
    pool.seed(3)
    pool.force_state(3, SUSCEPTIBLE)
    assert pool.counts == [20, 0, 0, 0]
    assert pool.vector_of(3) == "none"
    assert pool.exposed_epoch_of(3) == -1
    assert pool.infectious_by_region == [0, 0]
    pool.force_state(3, INFECTIOUS)
    code = pool.region_names.index(pool.region_of(3))
    assert pool.counts[INFECTIOUS] == 1
    assert pool.infectious_by_region[code] == 1


def test_pool_load_state_rejects_tampered_counters(pool):
    pool.seed(1)
    snapshot = pool.snapshot_state()
    snapshot["counts"][SUSCEPTIBLE] += 1
    clone = HostPool(20, REGIONS, Kernel(seed=1).rng.fork("pool"))
    with pytest.raises(CheckpointError):
        clone.load_state(snapshot)


def test_pool_load_state_rejects_size_and_region_mismatch(pool):
    snapshot = pool.snapshot_state()
    other = HostPool(21, REGIONS, Kernel(seed=1).rng.fork("pool"))
    with pytest.raises(CheckpointError):
        other.load_state(snapshot)
    renamed = HostPool(20, (("north", 1.0), ("south", 1.0)),
                       Kernel(seed=1).rng.fork("pool"))
    with pytest.raises(CheckpointError):
        renamed.load_state(snapshot)


# -- model --------------------------------------------------------------------

def test_model_validates_profile_and_schedule(kernel):
    with pytest.raises(ValueError):
        TransmissionProfile("bad", usb_rate=1.5)
    with pytest.raises(ValueError):
        TransmissionProfile("bad", latency_epochs=0)
    with pytest.raises(ValueError):
        EpidemicModel(kernel, TransmissionProfile("ok"), 10, 0)


def test_disclosure_damps_transmission_and_boosts_recovery():
    profile = TransmissionProfile(
        "d", usb_rate=0.4, recovery_rate=0.1, disclosure_epoch=5,
        disclosure_damp=0.5, disclosure_recovery_boost=0.2)
    assert profile.rates_at(4) == (0.4, 0.0, 0.0, 0.1)
    usb, lan, c2, recovery = profile.rates_at(5)
    assert usb == pytest.approx(0.2)
    assert recovery == pytest.approx(0.3)


def test_model_registers_as_state_provider(kernel):
    model = EpidemicModel(kernel, TransmissionProfile("p"), 10, 3)
    assert kernel.state_providers == ["epidemic:p"]
    with pytest.raises(SimulationError):
        EpidemicModel(kernel, TransmissionProfile("p"), 10, 3)
    assert model.provider_name == "epidemic:p"


def test_model_requires_seeding_before_start(kernel):
    model = EpidemicModel(kernel, TransmissionProfile("p"), 10, 3)
    with pytest.raises(RuntimeError):
        model.start()
    model.seed_initial(2)
    with pytest.raises(RuntimeError):
        model.seed_initial(2)


def test_epoch_records_trace_spans_and_metrics(kernel):
    model = EpidemicModel(
        kernel, TransmissionProfile("p", usb_rate=0.5,
                                    region_weights=REGIONS), 30, 4)
    model.seed_initial(2)
    model.start()
    kernel.run(until=model.horizon_seconds())
    assert model.finished
    assert "epidemic.epoch" in kernel.spans.names()
    epochs = [r for r in kernel.trace
              if r.actor == "epidemic" and r.action == "epoch"]
    assert len(epochs) == 4
    assert kernel.metrics.counter("epidemic.infections").value == \
        model.curve[-1]["cumulative"] - 2
    assert kernel.metrics.gauge("epidemic.infectious").value == \
        model.curve[-1]["infectious"]


def test_model_restore_rejects_mismatched_schedule(kernel):
    model = EpidemicModel(kernel, TransmissionProfile("p"), 10, 3)
    model.seed_initial(1)
    state = model.snapshot_state()
    other = EpidemicModel(Kernel(seed=2), TransmissionProfile("p"), 10, 4)
    with pytest.raises(CheckpointError):
        other.load_state(state)
    renamed = EpidemicModel(Kernel(seed=2), TransmissionProfile("q"),
                            10, 3)
    with pytest.raises(CheckpointError):
        renamed.load_state(state)


def test_extension_state_restores_before_provider_registration(kernel):
    """The resume short-circuit path: a checkpoint restored onto a bare
    kernel stashes the epidemic payload until the model registers."""
    from repro.sim import restore_kernel, snapshot_kernel

    profile = TransmissionProfile("p", usb_rate=0.5,
                                  region_weights=REGIONS)
    model = EpidemicModel(kernel, profile, 25, 5)
    model.seed_initial(2)
    model.start()
    kernel.run(until=2 * 86400.0)
    envelope = snapshot_kernel(kernel)

    bare = Kernel(seed=0)
    restore_kernel(envelope, kernel=bare)
    late = EpidemicModel(bare, profile, 25, 5)
    assert late.epoch == 2
    assert canonical_json(late.snapshot_state()) == \
        canonical_json(model.snapshot_state())


# -- promotion ----------------------------------------------------------------

def test_promote_infectious_row_carries_infection():
    world = CampaignWorld(seed=3)
    pool = HostPool(10, REGIONS, world.kernel.rng.fork("pool"))
    pool.expose(4, epoch=3, vector="lan")
    host = promote_host(world, pool, 4, "wormx")
    assert isinstance(host, WindowsHost)
    assert host.is_infected_by("wormx")
    infection = host.infections["wormx"]
    assert (infection.vector, infection.exposed_epoch,
            infection.active) == ("lan", 3, False)
    assert demote_host(pool, host, "wormx") == EXPOSED


def test_demote_writes_back_full_fidelity_outcomes():
    world = CampaignWorld(seed=3)
    pool = HostPool(10, REGIONS, world.kernel.rng.fork("pool"))
    pool.seed(1)
    cured = promote_host(world, pool, 1, "wormx")
    cured.remove_infection("wormx")           # disinfected at full tier
    assert demote_host(pool, cured, "wormx") == RECOVERED
    assert pool.state_of(1) == RECOVERED

    clean = promote_host(world, pool, 2, "wormx")
    assert not clean.is_infected_by("wormx")
    assert demote_host(pool, clean, "wormx") == SUSCEPTIBLE

    with pytest.raises(ValueError):
        demote_host(pool, world.make_host("STRAY-01"), "wormx")


def test_promoted_host_is_a_first_class_network_citizen():
    """A promoted pool row joins a LAN and speaks SMB like any host."""
    world = CampaignWorld(seed=4)
    pool = HostPool(10, REGIONS, world.kernel.rng.fork("pool"))
    pool.seed(7)
    host = promote_host(world, pool, 7, "wormx",
                        file_and_print_sharing=True)
    lan = Lan(world.kernel, "edge", internet=world.internet)
    lan.attach(host)
    assert host.nic is not None
    assert host.smb_sharing_enabled()


# -- winsim seam regressions --------------------------------------------------

class MinimalHost(SimHost):
    """A reduced-fidelity host: exactly the SimHost contract, no more."""


def test_windows_host_is_a_sim_host(host):
    assert isinstance(host, SimHost)
    assert host.smb_sharing_enabled() == host.config.file_and_print_sharing


def test_lan_attach_accepts_any_sim_host(kernel):
    lan = Lan(kernel, "lab")
    minimal = MinimalHost(kernel, "TINY-01")
    ip = lan.attach(minimal)
    assert minimal.nic == (lan, ip)
    assert lan.host_by_name("TINY-01") is minimal


def test_lan_attach_rejects_non_sim_hosts(kernel):
    """The latent seam: attach used to accept any object and crash
    later, deep in NetBIOS or SMB, with an AttributeError."""
    lan = Lan(kernel, "lab")
    with pytest.raises(NetworkError, match="SimHost interface"):
        lan.attach(object())


def test_smb_against_reduced_fidelity_host_fails_typed(kernel):
    """SMB file operations on a vfs-less host raise SmbError with a
    promotion hint — not AttributeError on ``host.config``."""
    lan = Lan(kernel, "lab")
    src = MinimalHost(kernel, "SRC-01")
    dst = MinimalHost(kernel, "DST-01")
    lan.attach(src)
    lan.attach(dst)
    dst.accepted_credentials.add("cred")
    # Capability probe answers False instead of crashing on config.
    assert not smb_accessible(lan, src, dst, "cred")

    class SharingMinimalHost(MinimalHost):
        def smb_sharing_enabled(self):
            return True

    open_dst = SharingMinimalHost(kernel, "DST-02")
    lan.attach(open_dst)
    open_dst.accepted_credentials.add("cred")
    with pytest.raises(SmbError, match="no filesystem fidelity"):
        smb_copy_file(lan, src, open_dst, "cred", b"payload",
                      "c:\\temp\\drop.exe")
