"""WindowsHost integration behaviours."""

import pytest

from repro.winsim import HostConfig, IntegrityLevel
from repro.winsim.patches import VULNERABILITIES


def test_fresh_host_is_usable_and_unpatched(host):
    assert host.usable()
    assert host.patches.open_vulnerabilities() == sorted(VULNERABILITIES)
    assert host.infections == {}


def test_unknown_os_version_rejected():
    with pytest.raises(ValueError):
        HostConfig(os_version="windows95")


def test_execute_file_spawns_and_runs_payload(host):
    seen = []
    host.vfs.write("c:\\run.exe", b"bin",
                   payload=lambda h, p: seen.append((h.hostname, p.name)))
    process = host.execute_file("c:\\run.exe")
    assert seen == [("TEST-01", "run.exe")]
    assert process.integrity == IntegrityLevel.USER


def test_infection_registry(host):
    sentinel = object()
    host.register_infection("testware", sentinel)
    assert host.is_infected_by("testware")
    assert host.infections["testware"] is sentinel
    assert host.remove_infection("testware") is sentinel
    assert not host.is_infected_by("testware")


def test_trace_records_to_kernel(kernel, host):
    host.trace("custom-action", target="x", extra=1)
    record = kernel.trace.last(actor="TEST-01", action="custom-action")
    assert record.detail == {"extra": 1}


def test_boot_starts_auto_services(host):
    host.vfs.write("c:\\svc.exe", b"")
    host.services.create("AutoThing", "c:\\svc.exe")
    started = host.boot()
    assert started == ["AutoThing"]


def test_boot_fails_on_wiped_disk(host):
    host.disk.write_mbr(b"\x00" * 512, kernel_mode=True)
    assert host.boot() is None
    assert not host.usable()


def test_share_folder(host):
    host.share_folder("Public", "c:\\shared")
    assert host.shares == {"public": "c:\\shared"}
    assert host.vfs.is_dir("c:\\shared")


def test_usb_insert_and_remove_hooks(host):
    from repro.usb import UsbDrive

    drive = UsbDrive("stick")
    host.insert_usb(drive, open_in_explorer=False)
    assert drive in host.usb_ports
    assert drive.visit_history[0]["host"] == "TEST-01"
    # Not on a LAN: counts as no-internet host.
    assert drive.visit_history[0]["had_internet"] is False
    host.remove_usb(drive)
    assert drive not in host.usb_ports


def test_usb_insertion_notifies_infections(host):
    from repro.usb import UsbDrive

    class FakeInfection:
        def __init__(self):
            self.seen = []

        def on_usb_inserted(self, h, d):
            self.seen.append((h.hostname, d.label))

    infection = FakeInfection()
    host.register_infection("fake", infection)
    host.insert_usb(UsbDrive("walker"), open_in_explorer=False)
    assert infection.seen == [("TEST-01", "walker")]


def test_system_dir_constant(host):
    assert host.system_dir == "c:\\windows\\system32"
    assert host.vfs.exists(host.system_dir + "\\kernel32.dll")
