"""API hook table chaining semantics."""

import pytest

from repro.winsim import ApiHookTable


@pytest.fixture
def hooks():
    table = ApiHookTable()
    table.register_api("open", lambda path: "opened:%s" % path)
    return table


def test_unhooked_call_reaches_implementation(hooks):
    assert hooks.call("open", "file.txt") == "opened:file.txt"


def test_unknown_api_raises(hooks):
    with pytest.raises(KeyError):
        hooks.call("nope")
    with pytest.raises(KeyError):
        hooks.hook("nope", lambda call_next: None)


def test_hook_can_observe_and_pass_through(hooks):
    seen = []

    def spy(call_next, path):
        seen.append(path)
        return call_next(path)

    hooks.hook("open", spy, label="spy")
    assert hooks.call("open", "a") == "opened:a"
    assert seen == ["a"]
    assert hooks.hooks_on("open") == ["spy"]
    assert hooks.hooked_apis() == ["open"]


def test_hook_can_rewrite_arguments(hooks):
    hooks.hook("open", lambda call_next, path: call_next(path.upper()))
    assert hooks.call("open", "x") == "opened:X"


def test_hook_can_swallow_call(hooks):
    hooks.hook("open", lambda call_next, path: "denied")
    assert hooks.call("open", "x") == "denied"


def test_hooks_chain_outermost_first(hooks):
    order = []

    def make(tag):
        def hook(call_next, path):
            order.append(tag)
            return call_next(path)
        return hook

    hooks.hook("open", make("first"))
    hooks.hook("open", make("second"))
    hooks.call("open", "x")
    assert order == ["first", "second"]


def test_unhook(hooks):
    unhook = hooks.hook("open", lambda call_next, path: "blocked")
    assert hooks.call("open", "x") == "blocked"
    unhook()
    assert hooks.call("open", "x") == "opened:x"
    unhook()  # idempotent
    assert hooks.hooked_apis() == []


def test_is_registered(hooks):
    assert hooks.is_registered("open")
    assert not hooks.is_registered("close")
