"""Hash registry and the deliberately forgeable weak digest."""

import pytest

from repro.crypto import (
    WEAK_DIGEST_SIZE,
    digest,
    forge_collision_block,
    is_collision_forgeable,
    sha256_digest,
    weak_digest,
)


def test_sha256_matches_hashlib():
    import hashlib

    assert sha256_digest(b"abc") == hashlib.sha256(b"abc").digest()


def test_weak_digest_is_16_bytes_and_deterministic():
    assert len(weak_digest(b"x")) == WEAK_DIGEST_SIZE
    assert weak_digest(b"hello") == weak_digest(b"hello")


def test_weak_digest_length_sensitivity():
    # Same content, trailing zero block: length field distinguishes them.
    assert weak_digest(b"a" * 16) != weak_digest(b"a" * 16 + b"\x00" * 16)


def test_forge_collision_block_hits_arbitrary_target():
    prefix = b"rogue certificate tbs bytes!".ljust(32, b"\x00")
    target = weak_digest(b"the legitimate certificate tbs")
    block = forge_collision_block(prefix, target)
    assert len(block) == WEAK_DIGEST_SIZE
    assert weak_digest(prefix + block) == target


def test_forge_requires_aligned_prefix():
    with pytest.raises(ValueError):
        forge_collision_block(b"unaligned", weak_digest(b"t"))


def test_forge_requires_proper_target_size():
    with pytest.raises(ValueError):
        forge_collision_block(b"\x00" * 16, b"short")


def test_forge_works_for_empty_prefix():
    target = weak_digest(b"whatever")
    block = forge_collision_block(b"", target)
    assert weak_digest(block) == target


def test_digest_dispatch():
    assert digest("sha256", b"a") == sha256_digest(b"a")
    assert digest("weakmd5", b"a") == weak_digest(b"a")
    with pytest.raises(ValueError):
        digest("md5-but-unknown", b"a")


def test_forgeability_flags():
    assert is_collision_forgeable("weakmd5")
    assert not is_collision_forgeable("sha256")
