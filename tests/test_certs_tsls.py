"""The Fig. 3 forgery: TSLS activation and certificate transplant."""

import pytest

from repro.certs import (
    ForgeryFailed,
    PkiWorld,
    TerminalServicesLicensingServer,
    forge_code_signing_certificate,
)
from repro.certs.certificate import (
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
)
from repro.crypto import generate_keypair


@pytest.fixture(scope="module")
def pki():
    return PkiWorld()


@pytest.fixture(scope="module")
def activated_tsls(pki):
    tsls = TerminalServicesLicensingServer("Enterprise Corp")
    tsls.activate(pki.licensing_ca)
    return tsls


def test_activation_issues_limited_certificate(activated_tsls):
    cert = activated_tsls.certificate
    assert activated_tsls.activated
    assert cert.allows(KEY_USAGE_LICENSE_VERIFICATION)
    assert not cert.allows(KEY_USAGE_CODE_SIGNING)
    assert cert.signature_algorithm == "weakmd5"


def test_tsls_issues_licenses_after_activation(activated_tsls):
    license_record = activated_tsls.issue_client_license("DESKTOP-7")
    assert license_record["client"] == "DESKTOP-7"
    assert activated_tsls.licenses_issued >= 1


def test_unactivated_tsls_cannot_issue_licenses():
    tsls = TerminalServicesLicensingServer("Lazy Corp")
    with pytest.raises(RuntimeError):
        tsls.issue_client_license("X")


def test_forged_certificate_verifies_as_microsoft(pki, activated_tsls):
    attacker = generate_keypair("attacker")
    rogue = forge_code_signing_certificate(activated_tsls.certificate,
                                           "MS", attacker.public)
    assert rogue.allows(KEY_USAGE_CODE_SIGNING)
    # The transplanted Microsoft signature verifies over the rogue TBS.
    assert rogue.verify_signature(pki.licensing_ca.keypair.public)
    # And the full chain to the Microsoft root passes host validation.
    store = pki.make_trust_store()
    chain = [rogue] + pki.licensing_chain_tail()
    result = store.verify_chain(chain, usage=KEY_USAGE_CODE_SIGNING)
    assert result, result.reason


def test_limited_cert_itself_cannot_sign_code(pki, activated_tsls):
    store = pki.make_trust_store()
    chain = [activated_tsls.certificate] + pki.licensing_chain_tail()
    assert not store.verify_chain(chain, usage=KEY_USAGE_CODE_SIGNING)


def test_forgery_fails_against_sha256_chain(pki):
    tsls = TerminalServicesLicensingServer("Fixed Corp")
    cert = tsls.activate(pki.licensing_ca, algorithm="sha256")
    with pytest.raises(ForgeryFailed):
        forge_code_signing_certificate(cert, "MS")


def test_forgery_requires_signature():
    from repro.certs import Certificate

    key = generate_keypair("k").public
    unsigned = Certificate("s", "i", "1", key,
                           {KEY_USAGE_LICENSE_VERIFICATION}, 0, 10,
                           signature_algorithm="weakmd5")
    with pytest.raises(ForgeryFailed):
        forge_code_signing_certificate(unsigned, "MS")


def test_advisory_2718704_kills_the_forgery(pki, activated_tsls):
    """Microsoft's fix: move the licensing certs to the untrusted store."""
    attacker = generate_keypair("attacker2")
    rogue = forge_code_signing_certificate(activated_tsls.certificate,
                                           "MS", attacker.public)
    store = pki.make_trust_store()
    store.mark_untrusted(pki.licensing_ca_cert)
    chain = [rogue] + pki.licensing_chain_tail()
    result = store.verify_chain(chain, usage=KEY_USAGE_CODE_SIGNING)
    assert not result
    assert "untrusted" in result.reason
