"""Property-based tests: the Lua VM agrees with Python semantics."""

from hypothesis import given, settings, strategies as st

from repro.luavm import LuaVM

_small_int = st.integers(min_value=-1000, max_value=1000)


@settings(max_examples=60, deadline=None)
@given(a=_small_int, b=_small_int, c=_small_int)
def test_arithmetic_matches_python(a, b, c):
    vm = LuaVM()
    vm.run("x = %d + %d * %d - (%d - %d)" % (a, b, c, c, a))
    assert vm.get_global("x") == a + b * c - (c - a)


@settings(max_examples=40, deadline=None)
@given(a=_small_int, b=st.integers(min_value=1, max_value=500))
def test_modulo_matches_python(a, b):
    vm = LuaVM()
    vm.run("x = %d %% %d" % (a, b))
    assert vm.get_global("x") == a % b


@settings(max_examples=40, deadline=None)
@given(values=st.lists(_small_int, max_size=20))
def test_table_insert_then_sum_loop(values):
    vm = LuaVM()
    vm.run("""
    items = {}
    function add(v) table.insert(items, v) end
    function total()
      local s = 0
      for i = 1, #items do s = s + items[i] end
      return s
    end
    """)
    for value in values:
        vm.call("add", value)
    assert vm.call("total") == sum(values)


@settings(max_examples=40, deadline=None)
@given(start=st.integers(min_value=-50, max_value=50),
       stop=st.integers(min_value=-50, max_value=50),
       step=st.integers(min_value=1, max_value=7))
def test_numeric_for_matches_range(start, stop, step):
    vm = LuaVM()
    vm.run("n = 0 for i = %d, %d, %d do n = n + 1 end" % (start, stop, step))
    expected = len(range(start, stop + 1, step))
    assert vm.get_global("n") == expected


@settings(max_examples=40, deadline=None)
@given(text=st.text(alphabet=st.characters(min_codepoint=32,
                                           max_codepoint=126,
                                           blacklist_characters="'\\"),
                    max_size=40))
def test_string_round_trip_through_vm(text):
    vm = LuaVM()
    vm.register("echo", lambda s: s)
    vm.run("out = echo('%s')" % text)
    assert vm.get_global("out") == text
    vm.run("n = string.len('%s')" % text)
    assert vm.get_global("n") == len(text)


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.text(alphabet="abc", min_size=1, max_size=4),
                      max_size=10))
def test_host_bridge_list_round_trip(items):
    vm = LuaVM()
    vm.register("provide", lambda: list(items))
    vm.run("""
    got = provide()
    count = #got
    """)
    assert vm.get_global("count") == len(items)
    assert vm.get_global("got") == (list(items) if items else {}) or items == []
