"""Driver loading and signature policy."""

import pytest

from repro.certs.codesign import sign_image
from repro.certs.wellknown import ELDOS, JMICRON
from repro.pe import PeBuilder
from repro.winsim import DriverLoadError


def _signed_driver_image(world, vendor=ELDOS, marker=b"driver code"):
    cert, keypair = world.vendor_credentials(vendor)
    builder = PeBuilder()
    builder.add_code_section(marker)
    return sign_image(builder, keypair, [cert])


def test_signed_driver_loads(host, world):
    host.vfs.write("c:\\d.sys", _signed_driver_image(world))
    driver = host.drivers.load("d.sys", "c:\\d.sys",
                               capabilities=("raw-disk-access",))
    assert driver.loaded
    assert driver.signer == ELDOS
    assert host.drivers.grants("raw-disk-access")


def test_unsigned_driver_refused(host):
    builder = PeBuilder()
    builder.add_code_section(b"unsigned")
    host.vfs.write("c:\\u.sys", builder.build())
    with pytest.raises(DriverLoadError):
        host.drivers.load("u.sys", "c:\\u.sys")
    assert host.event_log.entries(source="driver-load", severity="error")


def test_garbage_driver_refused(host):
    host.vfs.write("c:\\g.sys", b"not a pe")
    with pytest.raises(DriverLoadError):
        host.drivers.load("g.sys", "c:\\g.sys")


def test_lax_policy_loads_anything(host_factory):
    host = host_factory("LAX-01", enforce_driver_signatures=False)
    host.vfs.write("c:\\g.sys", b"whatever bytes")
    driver = host.drivers.load("g.sys", "c:\\g.sys")
    assert driver.loaded
    assert driver.signer is None


def test_duplicate_load_rejected(host, world):
    host.vfs.write("c:\\d.sys", _signed_driver_image(world))
    host.drivers.load("d.sys", "c:\\d.sys")
    with pytest.raises(DriverLoadError):
        host.drivers.load("d.sys", "c:\\d.sys")


def test_unload_revokes_raw_access(host, world):
    host.vfs.write("c:\\d.sys", _signed_driver_image(world))
    host.drivers.load("d.sys", "c:\\d.sys", capabilities=("raw-disk-access",))
    assert host.drivers.unload("d.sys")
    assert not host.drivers.grants("raw-disk-access")
    assert "d.sys" not in host.disk.raw_access_grants
    assert not host.drivers.unload("d.sys")


def test_driver_payload_runs_on_load(host, world):
    seen = []
    host.vfs.write("c:\\d.sys", _signed_driver_image(world, JMICRON))
    host.drivers.load("d.sys", "c:\\d.sys",
                      payload=lambda h, d: seen.append(d.name))
    assert seen == ["d.sys"]


def test_revoked_certificate_blocks_driver(host, world):
    cert, _ = world.vendor_credentials(JMICRON)
    host.trust_store.revoke_serial(cert.serial)
    host.vfs.write("c:\\d.sys", _signed_driver_image(world, JMICRON))
    with pytest.raises(DriverLoadError):
        host.drivers.load("d.sys", "c:\\d.sys")
