"""Differential replay harness for the checkpoint format.

Three layers of evidence that a checkpoint is a faithful cut of a run:

1. **Round-trip identity** — ``snapshot(load(s)) == s`` byte for byte,
   on hand-built busy kernels and on Hypothesis-generated ones.
2. **Continuation equivalence** — a kernel restored mid-run and driven
   to completion reaches the exact state (digest, trace, RNG stream)
   of the run that was never interrupted, including when the cut point
   is a budget abort that used :meth:`EventQueue.restore`.
3. **Campaign conformance** — all three paper campaigns checkpoint at
   every kill-chain stage boundary; each recorded snapshot restores to
   its recorded state digest, and an interrupted run resumes through
   the replay-verification protocol in :mod:`repro.core.resume`.

The self-rescheduling "beacon" harness used throughout keeps *all* of
its state in kernel-owned structures (clock, RNG, trace, metrics), so
it is fully continuable from a snapshot via the label→callback
registry — the one workload where restore-and-continue, not replay,
is exercised end to end.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import CAMPAIGNS, QUICK_PARAMS, trace_digest
from repro.core.resume import (
    CheckpointStore,
    interrupt_after,
    resume_checkpointed,
    run_checkpointed,
)
from repro.obs.export import export_digest
from repro.sim import Kernel
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    KIND_KERNEL,
    canonical_json,
    make_envelope,
    read_checkpoint,
    restore_kernel,
    snapshot_kernel,
    state_digest,
    verify_envelope,
    write_checkpoint,
)
from repro.sim.errors import (
    CheckpointDigestError,
    CheckpointError,
    CheckpointVersionError,
    SimulationError,
)

SEED = 20130708


# -- the continuable beacon harness --------------------------------------------

def beacon_factory(kernel, limit):
    """Label→callback factory for a self-rescheduling beacon chain.

    ``factory(label)`` returns the callback for that beacon — the
    signature :func:`restore_kernel`'s resolver expects — and each
    firing draws its next delay from the kernel RNG, records a trace
    line, bumps a metric, and schedules its successor.  No state
    outside the kernel, so a restored kernel continues bit-identically.
    """

    def factory(label):
        def fire():
            index = int(label.rsplit(":", 1)[1])
            delay = 1.0 + kernel.rng.uniform(0.0, 4.0)
            kernel.trace.record("beacon", "fire", label, delay=delay)
            kernel.metrics.inc("beacon.fires")
            if index < limit:
                successor = "beacon:%d" % (index + 1)
                kernel.call_later(delay, factory(successor), successor)

        return fire

    return factory


def _noop():
    return None


def start_beacons(kernel, limit=30):
    factory = beacon_factory(kernel, limit)
    kernel.call_later(0.5, factory("beacon:0"), "beacon:0")


def build_busy_kernel(seed=7, limit=25, junk=200, cancel=170):
    """A kernel exercising every snapshotted subsystem at once.

    The cancel count is chosen to leave garbage in the heap *after* a
    compaction has fired (cancel > COMPACT_MIN_GARBAGE and > live at
    some point), so the snapshot covers live entries, surviving
    cancelled entries, and post-compaction sequence accounting.
    """
    kernel = Kernel(seed=seed)
    start_beacons(kernel, limit)
    junk_events = [kernel.call_later(3600.0 + index, _noop,
                                     "junk:%d" % index)
                   for index in range(junk)]
    for event in junk_events[:cancel]:
        event.cancel()
    kernel.faults.inject_packet_loss(0.25, start=0.0, duration=9999.0)
    kernel.faults.inject_takedown("evil.example.net")
    with kernel.span("test.setup", note="busy"):
        kernel.metrics.inc("test.setup_spans")
    kernel.metrics.set_gauge("test.gauge", 42.5)
    kernel.metrics.observe("test.histogram", 3.0, buckets=(1.0, 5.0))
    kernel.trace.record("test", "built", "kernel", junk=junk, cancel=cancel)
    return kernel


# -- round-trip identity -------------------------------------------------------

def test_snapshot_restore_round_trip_is_identity():
    kernel = build_busy_kernel()
    kernel.run(until=40.0)
    envelope = snapshot_kernel(kernel, meta={"suite": "round-trip"})
    restored = restore_kernel(envelope)
    assert state_digest(restored) == envelope["state_digest"]
    again = snapshot_kernel(restored, meta={"suite": "round-trip"})
    assert canonical_json(again["state"]) == canonical_json(
        envelope["state"])
    assert again["state_digest"] == envelope["state_digest"]
    assert again["digest"] == envelope["digest"]


def test_snapshot_is_pure_observation():
    """Taking a snapshot must not perturb the run it captures."""
    kernel = build_busy_kernel()
    kernel.run(until=10.0)
    before = state_digest(kernel)
    snapshot_kernel(kernel, meta={"n": 1})
    snapshot_kernel(kernel)
    assert state_digest(kernel) == before
    witness = build_busy_kernel()
    witness.run(until=10.0)
    kernel.run(until=60.0)
    witness.run(until=60.0)
    assert state_digest(kernel) == state_digest(witness)


def test_restored_trace_indexes_answer_queries():
    kernel = build_busy_kernel()
    kernel.run(until=40.0)
    restored = restore_kernel(snapshot_kernel(kernel))
    assert len(restored.trace) == len(kernel.trace)
    assert (len(restored.trace.query(actor="beacon"))
            == len(kernel.trace.query(actor="beacon")))
    assert (len(restored.trace.query(action="fault-scheduled"))
            == len(kernel.trace.query(action="fault-scheduled")))


def test_restored_queue_preserves_cancelled_entries_and_sequence():
    kernel = build_busy_kernel(junk=100, cancel=10)  # below compaction
    snapshot = kernel._queue.snapshot_entries()
    cancelled = [entry for entry in snapshot["entries"]
                 if entry["cancelled"]]
    assert len(cancelled) == 10
    restored = restore_kernel(snapshot_kernel(kernel))
    assert len(restored._queue) == len(kernel._queue)
    assert restored._queue._sequence == kernel._queue._sequence
    assert (restored._queue.snapshot_entries()
            == kernel._queue.snapshot_entries())


def test_lazy_compaction_keeps_snapshots_equivalent():
    """Two queues in equivalent states — one compacted, one not —
    snapshot identically once their garbage is gone, and a snapshot
    taken *with* garbage restores it exactly (satellite: compaction ×
    checkpoint interaction)."""
    kernel = Kernel(seed=3)
    events = [kernel.call_later(10.0 + index, _noop, "e:%d" % index)
              for index in range(200)]
    for event in events[:150]:
        event.cancel()  # 150 > live 50 and > COMPACT_MIN_GARBAGE
    snapshot = kernel._queue.snapshot_entries()
    # Compaction fired at the 101st cancel (garbage 101 > live 99),
    # sweeping that garbage; the remaining 49 cancels accumulated
    # afterwards and stay in the heap below the next trigger point.
    cancelled = [e for e in snapshot["entries"] if e["cancelled"]]
    assert len(snapshot["entries"]) == 99
    assert len(cancelled) == 49
    assert len(kernel._queue) == 50
    # The sequence counter still reflects every push ever made.
    assert snapshot["sequence"] == 200
    restored = restore_kernel(snapshot_kernel(kernel))
    assert restored._queue.snapshot_entries() == snapshot
    assert len(restored._queue) == 50


def test_budget_abort_then_restore_continues_identically():
    """The PR-4 budget-abort path (EventQueue.restore) composes with
    snapshot/restore: cutting a run via max_events, snapshotting, and
    continuing in a fresh kernel matches the uninterrupted run."""
    reference = Kernel(seed=11)
    start_beacons(reference, limit=20)
    reference.run(until=500.0)
    final = state_digest(reference)

    kernel = Kernel(seed=11)
    start_beacons(kernel, limit=20)
    with pytest.raises(SimulationError):
        kernel.run(until=500.0, max_events=7)
    assert kernel.pending_events == 1  # the aborted event went back
    restored = _restore_continuable(snapshot_kernel(kernel), limit=20)
    restored.run(until=500.0)
    assert state_digest(restored) == final
    assert trace_digest(restored.trace) == trace_digest(reference.trace)


def _restore_continuable(envelope, limit):
    """Restore a beacon kernel with callbacks bound to *itself*."""
    kernel = restore_kernel(envelope)
    kernel._queue.load_entries(
        envelope["state"]["queue"],
        lambda label: beacon_factory(kernel, limit)(label))
    return kernel


def test_restored_rng_continues_the_stream():
    kernel = Kernel(seed=99)
    [kernel.rng.uniform(0, 1) for _ in range(10)]
    envelope = snapshot_kernel(kernel)
    upcoming = [kernel.rng.uniform(0, 1) for _ in range(5)]
    fork_value = kernel.rng.fork("child").uniform(0, 1)
    restored = restore_kernel(envelope)
    assert [restored.rng.uniform(0, 1) for _ in range(5)] == upcoming
    assert restored.rng.fork("child").uniform(0, 1) == fork_value


# -- unbound callbacks and the resolver ----------------------------------------

def test_dispatching_unbound_event_raises_typed_error():
    kernel = Kernel(seed=1)
    kernel.call_later(1.0, _noop, "mystery:event")
    restored = restore_kernel(snapshot_kernel(kernel))
    with pytest.raises(CheckpointError, match="mystery:event"):
        restored.run()


def test_pending_unbound_events_are_harmless_until_dispatched():
    kernel = build_busy_kernel()
    restored = restore_kernel(snapshot_kernel(kernel))
    # The first beacon fires at t=0.5 and the junk sits at t>=3600;
    # stopping before either means no placeholder is ever invoked.
    restored.run(until=0.25, max_events=10)
    assert state_digest(restored) is not None


def test_callback_resolver_exact_and_prefix_binding():
    kernel = Kernel(seed=5)
    fired = []
    kernel.call_later(1.0, _noop, "exact-label")
    kernel.call_later(2.0, _noop, "beacon:7")
    kernel.call_later(3.0, _noop, "beacon:extra:9")
    envelope = snapshot_kernel(kernel)
    restored = restore_kernel(envelope, callbacks={
        "exact-label": lambda label: (lambda: fired.append(label)),
        "beacon:extra:*": lambda label: (
            lambda: fired.append("extra!" + label)),
        "beacon:*": lambda label: (lambda: fired.append("b:" + label)),
    })
    restored.run()
    # Longest prefix wins; exact beats prefix.
    assert fired == ["exact-label", "b:beacon:7", "extra!beacon:extra:9"]


# -- envelope validation (typed error satellite) -------------------------------

@pytest.fixture
def envelope_on_disk(tmp_path):
    kernel = build_busy_kernel()
    kernel.run(until=20.0)
    path = str(tmp_path / "kernel.json")
    write_checkpoint(path, snapshot_kernel(kernel, meta={"k": 1}))
    return path


def test_read_checkpoint_round_trip(envelope_on_disk):
    envelope = read_checkpoint(envelope_on_disk, kind=KIND_KERNEL)
    assert envelope["format"] == CHECKPOINT_VERSION
    assert restore_kernel(envelope).dispatched_events > 0


def test_missing_file_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(str(tmp_path / "absent.json"))


def test_truncated_file_raises_checkpoint_error(envelope_on_disk):
    data = open(envelope_on_disk, encoding="utf-8").read()
    with open(envelope_on_disk, "w", encoding="utf-8") as stream:
        stream.write(data[:len(data) // 2])
    with pytest.raises(CheckpointError, match="cannot read"):
        read_checkpoint(envelope_on_disk)


def test_non_json_garbage_raises_checkpoint_error(envelope_on_disk):
    with open(envelope_on_disk, "w", encoding="utf-8") as stream:
        stream.write("\x00\x01 not json at all")
    with pytest.raises(CheckpointError):
        read_checkpoint(envelope_on_disk)


def test_version_mismatch_raises_version_error(envelope_on_disk):
    envelope = json.load(open(envelope_on_disk, encoding="utf-8"))
    envelope["format"] = CHECKPOINT_VERSION + 1
    with open(envelope_on_disk, "w", encoding="utf-8") as stream:
        json.dump(envelope, stream)
    with pytest.raises(CheckpointVersionError) as excinfo:
        read_checkpoint(envelope_on_disk)
    assert excinfo.value.expected == CHECKPOINT_VERSION
    assert excinfo.value.found == CHECKPOINT_VERSION + 1


def test_tampered_state_raises_digest_error(envelope_on_disk):
    envelope = json.load(open(envelope_on_disk, encoding="utf-8"))
    envelope["state"]["dispatched"] += 1
    with open(envelope_on_disk, "w", encoding="utf-8") as stream:
        json.dump(envelope, stream)
    with pytest.raises(CheckpointDigestError):
        read_checkpoint(envelope_on_disk)


def test_tampered_state_digest_raises_digest_error(envelope_on_disk):
    envelope = json.load(open(envelope_on_disk, encoding="utf-8"))
    envelope["state_digest"] = "0" * 64
    with open(envelope_on_disk, "w", encoding="utf-8") as stream:
        json.dump(envelope, stream)
    with pytest.raises(CheckpointDigestError):
        read_checkpoint(envelope_on_disk)


def test_wrong_kind_is_rejected(envelope_on_disk):
    with pytest.raises(CheckpointError, match="kind"):
        read_checkpoint(envelope_on_disk, kind="sweep-manifest")


def test_missing_fields_are_rejected():
    with pytest.raises(CheckpointError, match="missing required"):
        verify_envelope({"format": CHECKPOINT_VERSION})
    with pytest.raises(CheckpointError, match="not a JSON object"):
        verify_envelope(["not", "a", "dict"])


def test_write_checkpoint_is_atomic(tmp_path):
    """No ``.tmp`` residue, and the content is one canonical line."""
    path = str(tmp_path / "atomic.json")
    write_checkpoint(path, make_envelope(KIND_KERNEL, {"x": 1}))
    assert not os.path.exists(path + ".tmp")
    text = open(path, encoding="utf-8").read()
    assert text.endswith("\n")
    assert json.loads(text)["state"] == {"x": 1}


# -- Hypothesis properties -----------------------------------------------------

@st.composite
def kernel_programs(draw):
    """A deterministic recipe for a small, varied kernel state."""
    return {
        "seed": draw(st.integers(0, 2 ** 20)),
        "limit": draw(st.integers(0, 12)),
        "junk": draw(st.integers(0, 120)),
        "cancel_stride": draw(st.integers(1, 5)),
        "draws": draw(st.integers(0, 8)),
        "run_until": draw(st.floats(0.0, 60.0, allow_nan=False)),
    }


def _build_from_program(program):
    kernel = Kernel(seed=program["seed"])
    start_beacons(kernel, program["limit"])
    events = [kernel.call_later(1000.0 + index, _noop, "junk:%d" % index)
              for index in range(program["junk"])]
    for event in events[::program["cancel_stride"]]:
        event.cancel()
    for _ in range(program["draws"]):
        kernel.rng.uniform(0.0, 1.0)
    kernel.run(until=program["run_until"])
    return kernel


@settings(max_examples=25, deadline=None)
@given(kernel_programs())
def test_property_snapshot_load_snapshot_is_identity(program):
    kernel = _build_from_program(program)
    envelope = snapshot_kernel(kernel)
    restored = restore_kernel(envelope)
    assert (canonical_json(snapshot_kernel(restored)["state"])
            == canonical_json(envelope["state"]))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2 ** 16), cut=st.integers(0, 25))
def test_property_resume_at_any_event_index_is_equivalent(seed, cut):
    """Cut the beacon run after ``cut`` events (a budget abort), restore
    from the snapshot, continue: the final state digest must equal the
    uninterrupted run's — for every cut index."""
    limit = 20
    reference = Kernel(seed=seed)
    start_beacons(reference, limit)
    reference.run(until=400.0)
    final = state_digest(reference)

    kernel = Kernel(seed=seed)
    start_beacons(kernel, limit)
    try:
        kernel.run(until=400.0, max_events=cut)
        cut_short = False
    except SimulationError:
        cut_short = True
    restored = _restore_continuable(snapshot_kernel(kernel), limit)
    restored.run(until=400.0)
    assert state_digest(restored) == final
    if not cut_short:
        # The run already drained within the budget; the "resume" was a
        # pure round trip and must still match.
        assert state_digest(kernel) == final


# -- campaign conformance ------------------------------------------------------

def _campaign_factory(name):
    def factory():
        return CAMPAIGNS[name](seed=SEED, **dict(QUICK_PARAMS[name]))

    return factory


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_stage_checkpoints_restore_to_recorded_digests(
        name, tmp_path):
    """Every stage-boundary snapshot of every campaign restores to
    exactly the state digest the manifest recorded for it."""
    directory = str(tmp_path / name)
    report = run_checkpointed(_campaign_factory(name), directory,
                              meta={"campaign": name, "seed": SEED})
    store = CheckpointStore(directory).load()
    entries = store.entries()
    assert len(entries) >= 3  # several stages plus the final checkpoint
    assert entries[-1]["tag"] == "final"
    for entry in entries:
        envelope = store.read(entry)
        restored = restore_kernel(envelope)
        assert state_digest(restored) == entry["state_digest"]
        assert restored.dispatched_events == entry["events"]
    # The final snapshot reproduces the live kernel's export digest.
    final = restore_kernel(store.read(entries[-1]))
    assert export_digest(final) == export_digest(report.kernel)


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_interrupted_resume_verifies_prefix(name, tmp_path):
    directory = str(tmp_path / name)
    meta = {"campaign": name, "seed": SEED}
    baseline = run_checkpointed(_campaign_factory(name), directory,
                                meta=meta)
    recorded = CheckpointStore(directory).load().entries()
    interrupt_after(directory, keep=len(recorded) // 2)
    report = resume_checkpointed(_campaign_factory(name), directory,
                                 meta=meta)
    assert not report.short_circuited
    assert report.verified == len(recorded) // 2
    assert report.result == baseline.result
    assert (trace_digest(report.kernel.trace)
            == trace_digest(baseline.kernel.trace))
    fresh = CheckpointStore(directory).load().entries()
    assert [(e["tag"], e["events"], e["state_digest"]) for e in fresh] \
        == [(e["tag"], e["events"], e["state_digest"]) for e in recorded]


def test_resume_detects_divergent_replay(tmp_path):
    """Resuming with a different seed must fail at the first checkpoint
    whose digest disagrees — never silently return the wrong run."""
    directory = str(tmp_path / "diverge")
    run_checkpointed(_campaign_factory("shamoon"), directory)
    interrupt_after(directory, keep=2)

    def wrong_seed():
        return CAMPAIGNS["shamoon"](seed=SEED + 1,
                                    **dict(QUICK_PARAMS["shamoon"]))

    with pytest.raises(CheckpointError, match="diverged"):
        resume_checkpointed(wrong_seed, directory)


def test_resume_rejects_mismatched_meta(tmp_path):
    directory = str(tmp_path / "meta")
    meta = {"campaign": "shamoon", "seed": SEED}
    run_checkpointed(_campaign_factory("shamoon"), directory, meta=meta)
    interrupt_after(directory, keep=1)
    with pytest.raises(CheckpointError, match="different"):
        resume_checkpointed(_campaign_factory("shamoon"), directory,
                            meta={"campaign": "shamoon", "seed": SEED + 9})


def test_finished_run_short_circuits_without_replay(tmp_path):
    directory = str(tmp_path / "done")
    baseline = run_checkpointed(_campaign_factory("shamoon"), directory)

    def exploding_factory():
        raise AssertionError("a finished run must not be replayed")

    from repro.obs.export import jsonable

    report = resume_checkpointed(exploding_factory, directory)
    assert report.short_circuited
    assert report.result == jsonable(baseline.result)
    assert export_digest(report.kernel) == export_digest(baseline.kernel)
