"""Hybrid sealed blobs: only the coordinator opens stolen data."""

from repro.crypto import SealedBlob, generate_keypair, seal, unseal


def test_seal_unseal_round_trip():
    coordinator = generate_keypair("coordinator")
    blob = seal(coordinator.public, b"stolen document body")
    assert unseal(coordinator, blob) == b"stolen document body"


def test_ciphertext_differs_from_plaintext():
    coordinator = generate_keypair("coordinator")
    blob = seal(coordinator.public, b"stolen document body")
    assert blob.ciphertext != b"stolen document body"


def test_wire_round_trip():
    coordinator = generate_keypair("coordinator")
    blob = seal(coordinator.public, b"payload " * 100)
    wire = blob.to_bytes()
    restored = SealedBlob.from_bytes(wire)
    assert unseal(coordinator, restored) == b"payload " * 100


def test_nonce_changes_ciphertext():
    coordinator = generate_keypair("coordinator")
    a = seal(coordinator.public, b"same", nonce=b"1")
    b = seal(coordinator.public, b"same", nonce=b"2")
    assert a.ciphertext != b.ciphertext
    assert unseal(coordinator, a) == unseal(coordinator, b) == b"same"


def test_operator_without_private_key_sees_noise():
    coordinator = generate_keypair("coordinator")
    eavesdropper = generate_keypair("operator")
    blob = seal(coordinator.public, b"top secret exfil")
    # Another key pair either fails to unseal or produces garbage.
    try:
        recovered = unseal(eavesdropper, blob)
    except ValueError:
        recovered = None
    assert recovered != b"top secret exfil"


def test_large_payload_seals_quickly_and_correctly():
    coordinator = generate_keypair("coordinator")
    payload = b"\x07" * (2 * 1024 * 1024)
    blob = seal(coordinator.public, payload)
    assert blob.size == len(payload)
    assert unseal(coordinator, blob) == payload
