"""Lua-subset execution semantics."""

import pytest

from repro.luavm import LuaRuntimeError, LuaVM


def run_and_get(source, name):
    vm = LuaVM()
    vm.run(source)
    return vm.get_global(name)


def test_arithmetic_and_precedence():
    assert run_and_get("x = 2 + 3 * 4", "x") == 14
    assert run_and_get("x = (2 + 3) * 4", "x") == 20
    assert run_and_get("x = 10 % 3", "x") == 1
    assert run_and_get("x = -2 * 3", "x") == -6


def test_division_by_zero_raises():
    with pytest.raises(LuaRuntimeError):
        LuaVM().run("x = 1 / 0")


def test_comparison_and_logic():
    assert run_and_get("x = 1 < 2 and 3 >= 3", "x") is True
    assert run_and_get("x = nil or 'fallback'", "x") == "fallback"
    assert run_and_get("x = false and error_never_evaluated", "x") is False
    assert run_and_get("x = not nil", "x") is True


def test_lua_truthiness_zero_is_true():
    assert run_and_get("if 0 then x = 'zero-true' end", "x") == "zero-true"


def test_string_concat_coerces_numbers():
    assert run_and_get("x = 'v' .. 2", "x") == "v2"
    assert run_and_get("x = 1.0 .. ''", "x") == "1"


def test_length_operator():
    assert run_and_get("x = #'hello'", "x") == 5
    assert run_and_get("t = {1,2,3} x = #t", "x") == 3


def test_local_scoping_and_closures():
    source = """
    local counter = 0
    function bump() counter = counter + 1 return counter end
    bump() bump()
    result = bump()
    """
    assert run_and_get(source, "result") == 3


def test_locals_shadow_globals():
    source = """
    x = 'global'
    function f()
      local x = 'local'
      return x
    end
    y = f()
    """
    vm = LuaVM()
    vm.run(source)
    assert vm.get_global("x") == "global"
    assert vm.get_global("y") == "local"


def test_recursion():
    vm = LuaVM()
    vm.run("""
    function fact(n)
      if n <= 1 then return 1 end
      return n * fact(n - 1)
    end
    """)
    assert vm.call("fact", 10) == 3628800


def test_while_and_break():
    source = """
    s = 0
    local i = 0
    while true do
      i = i + 1
      if i > 100 then break end
      s = s + i
    end
    """
    assert run_and_get(source, "s") == 5050


def test_numeric_for_with_step():
    assert run_and_get("s = 0 for i = 10, 1, -2 do s = s + i end", "s") == 30
    with pytest.raises(LuaRuntimeError):
        LuaVM().run("for i = 1, 2, 0 do end")


def test_tables_mixed_keys():
    source = """
    t = { 10, 20, tag = 'x' }
    t[3] = 30
    t['other'] = true
    a = t[1] + t[2] + t[3]
    b = t.tag
    """
    vm = LuaVM()
    vm.run(source)
    assert vm.get_global("a") == 60
    assert vm.get_global("b") == "x"


def test_setting_nil_deletes_key():
    source = "t = {1, 2} t[2] = nil n = #t"
    assert run_and_get(source, "n") == 1


def test_method_call_passes_self():
    source = """
    account = { balance = 100 }
    function account.deposit(self, amount)
      self.balance = self.balance + amount
      return self.balance
    end
    result = account:deposit(50)
    """
    assert run_and_get(source, "result") == 150


def test_float_and_int_table_keys_unify():
    assert run_and_get("t = {} t[1] = 'a' x = t[1.0]", "x") == "a"


def test_calling_nil_raises():
    with pytest.raises(LuaRuntimeError):
        LuaVM().run("undefined_function()")


def test_indexing_nil_raises():
    with pytest.raises(LuaRuntimeError):
        LuaVM().run("x = ghost.field")


def test_arithmetic_on_string_raises():
    with pytest.raises(LuaRuntimeError):
        LuaVM().run("x = 'a' + 1")


def test_instruction_budget_stops_infinite_loops():
    vm = LuaVM(instruction_budget=5_000)
    with pytest.raises(LuaRuntimeError):
        vm.run("while true do end")


def test_host_bridge_round_trip():
    vm = LuaVM()
    received = []
    vm.register("host_fn", lambda items: (received.append(items), len(items))[1])
    vm.run("n = host_fn({ 'a', 'b', 'c' })")
    assert received == [["a", "b", "c"]]
    assert vm.get_global("n") == 3


def test_host_bridge_dict_tables():
    vm = LuaVM()
    vm.register("get_config", lambda: {"interval": 30, "targets": ["x"]})
    vm.run("cfg = get_config() i = cfg.interval t1 = cfg.targets[1]")
    assert vm.get_global("i") == 30
    assert vm.get_global("t1") == "x"


def test_vm_call_undefined_raises():
    with pytest.raises(LuaRuntimeError):
        LuaVM().call("nothing")


def test_do_block_scopes():
    source = "do local hidden = 1 end x = hidden"
    assert run_and_get(source, "x") is None


def test_return_from_chunk():
    vm = LuaVM()
    assert vm.run("return 1 + 2") == 3


# --- border semantics and coercion regressions (both backends) ---------------
#
# These pin the subset semantics documented in the interpreter module
# docstring; the bytecode VM must match, so each case runs on both.

from repro.luavm import LuaTable, create_vm  # noqa: E402


@pytest.fixture(params=["tree", "bytecode"])
def any_vm(request):
    return create_vm(backend=request.param)


def test_length_stops_at_first_nil_hole(any_vm):
    any_vm.run("t = {1, 2, 3}\nt[2] = nil\nn = #t")
    assert any_vm.get_global("n") == 1


def test_length_of_table_built_with_nil_hole_from_host():
    # Passing None values through the constructor must not create
    # phantom entries that inflate the border.
    table = LuaTable({1: "a", 2: None, 3: "c"})
    assert table.length() == 1
    assert table.get(2) is None


def test_constructor_normalises_float_keys_like_set():
    table = LuaTable({1.0: "a"})
    assert table.get(1) == "a"
    assert table.length() == 1


def test_length_empty_and_dense(any_vm):
    any_vm.run("a = #{}\nb = #{10, 20, 30}")
    assert any_vm.get_global("a") == 0
    assert any_vm.get_global("b") == 3


def test_concat_rejects_non_scalar_values(any_vm):
    with pytest.raises(LuaRuntimeError, match="concatenate a table value"):
        any_vm.run("x = {} .. 'tail'")
    with pytest.raises(LuaRuntimeError, match="concatenate a boolean value"):
        any_vm.run("x = true .. 'tail'")
    with pytest.raises(LuaRuntimeError, match="concatenate a nil value"):
        any_vm.run("x = nil .. 'tail'")


def test_concat_coerces_numbers_but_comparison_never_coerces(any_vm):
    any_vm.run("joined = 1 .. '2'")
    assert any_vm.get_global("joined") == "12"
    with pytest.raises(LuaRuntimeError, match="cannot compare"):
        any_vm.run("x = 1 < '2'")
    with pytest.raises(LuaRuntimeError, match="cannot compare"):
        any_vm.run("x = 'a' <= 1")


def test_equality_never_crosses_types(any_vm):
    any_vm.run("""
    a = 1 == '1'
    b = 1 == true
    c = 0 == false
    d = nil == false
    """)
    assert any_vm.get_global("a") is False
    assert any_vm.get_global("b") is False
    assert any_vm.get_global("c") is False
    assert any_vm.get_global("d") is False


def test_booleans_do_not_order(any_vm):
    with pytest.raises(LuaRuntimeError, match="cannot compare"):
        any_vm.run("x = true < 1")
    with pytest.raises(LuaRuntimeError, match="cannot compare"):
        any_vm.run("x = false < true")


def test_call_depth_cap_raises_typed_error(any_vm):
    with pytest.raises(LuaRuntimeError, match="call stack overflow"):
        any_vm.run("local function f() return f() end\nreturn f()")
