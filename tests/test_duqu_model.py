"""Duqu: spear-phish delivery, per-infection builds, 36-day lifetime."""

import pytest

from repro.malware.duqu import Duqu, DuquConfig, LIFETIME_DAYS


@pytest.fixture
def duqu(kernel, world):
    return Duqu(kernel, world)


def test_spear_phish_infects(host, duqu):
    assert duqu.spear_phish(host)
    assert host.is_infected_by("duqu")
    assert duqu.infections_by_vector() == {"spear-phish": 1}


def test_signed_driver_loads_with_stolen_cmedia_cert(host, duqu):
    duqu.spear_phish(host)
    driver = host.drivers.get("jminet7.sys")
    assert driver is not None
    assert "C-Media" in driver.signer


def test_per_infection_builds_are_unique(host_factory, duqu):
    for index in range(6):
        duqu.spear_phish(host_factory("TARGET-%02d" % index))
    assert len(duqu.infection_builds) == 6
    assert duqu.builds_are_unique()


def test_builds_are_deterministic_per_host(kernel, world, host_factory):
    a = Duqu(kernel, world)
    b = Duqu(kernel, world)
    assert a._compile_for("SAME-HOST") == b._compile_for("SAME-HOST")
    assert a._compile_for("HOST-A") != a._compile_for("HOST-B")


def test_byte_signatures_fail_across_infections(host_factory, duqu):
    """§V.D: per-infection compilation defeats byte-pattern detection."""
    from repro.analysis import Signature

    first = host_factory("FIRST")
    second = host_factory("SECOND")
    duqu.spear_phish(first)
    duqu.spear_phish(second)
    # A vendor builds a rule from the first sample's module bytes...
    sample = first.vfs.read(first.system_dir + "\\netp191.pnf", raw=True)
    rule = Signature("duqu-sample-1", "duqu", byte_patterns=[sample[:64]])
    # ...which matches the first machine but not the second.
    assert rule.matches_bytes(
        first.vfs.read(first.system_dir + "\\netp191.pnf", raw=True))
    assert not rule.matches_bytes(
        second.vfs.read(second.system_dir + "\\netp191.pnf", raw=True))


def test_keystroke_collection(kernel, host, duqu):
    duqu.spear_phish(host)
    kernel.run_for(2 * 86400.0)
    assert duqu.stolen_keystrokes[host.hostname] > 0


def test_lifetime_self_removal(kernel, host, duqu):
    duqu.spear_phish(host)
    kernel.run_for((LIFETIME_DAYS - 1) * 86400.0)
    assert host.is_infected_by("duqu")
    kernel.run_for(2 * 86400.0)
    assert not host.is_infected_by("duqu")
    assert not host.vfs.exists(host.system_dir + "\\netp191.pnf", raw=True)
    assert host.drivers.get("jminet7.sys") is None
    assert kernel.trace.first(actor="duqu", action="lifetime-self-removal")


def test_custom_lifetime(kernel, world, host_factory):
    duqu = Duqu(kernel, world, DuquConfig(lifetime_days=2))
    host = host_factory("SHORT")
    duqu.spear_phish(host)
    kernel.run_for(3 * 86400.0)
    assert not host.is_infected_by("duqu")


def test_beacon_uploads_when_connected(kernel, world, host_factory):
    from repro.netsim import Internet, Lan
    from repro.netsim.http import HttpResponse, HttpServer

    internet = Internet(kernel)
    received = []
    sink = HttpServer("duqu-cnc")
    sink.route("/upload", lambda r: (received.append(r.body),
                                     HttpResponse(200, b"ok"))[1])
    internet.register_site("dq.example.com", sink)
    lan = Lan(kernel, "office", internet=internet)
    host = host_factory("VICTIM")
    lan.attach(host)
    duqu = Duqu(kernel, world, DuquConfig(cnc_domain="dq.example.com"))
    duqu.spear_phish(host)
    kernel.run_for(2 * 86400.0)
    assert received


def test_trend_artifacts_from_live_instance(kernel, world, host_factory, duqu):
    from repro.analysis.trends import duqu_artifacts

    duqu.spear_phish(host_factory("T1"))
    duqu.spear_phish(host_factory("T2"))
    kernel.run_for((LIFETIME_DAYS + 1) * 86400.0)
    facts = duqu_artifacts(duqu)
    scores = facts.scores()
    assert facts.source == "measured"
    assert scores["targeting"] >= 4
    assert scores["suicide"] == 5  # lifetime removal executed
    assert scores["modularity"] >= 3
