"""Report formatting helpers."""

from repro.core import comparison_table, format_row


def test_format_row_with_verdict():
    row = format_row("metric", "paper-value", "measured-value", True)
    assert "paper-value" in row
    assert "measured-value" in row
    assert "[OK]" in row


def test_format_row_diverging():
    row = format_row("metric", 1, 2, False)
    assert "[DIVERGES]" in row


def test_format_row_without_verdict():
    row = format_row("metric", 1, 1)
    assert "[" not in row


def test_comparison_table_mixes_row_arities():
    table = comparison_table("TITLE", [
        ("three-col", "a", "b"),
        ("four-col", "a", "b", True),
    ])
    assert "TITLE" in table
    assert table.count("paper:") == 2
    assert table.count("[OK]") == 1
    assert table.startswith("\n")


def test_comparison_table_handles_non_string_values():
    table = comparison_table("T", [("n", 30000, 29999.5, False)])
    assert "30000" in table
    assert "29999.5" in table
