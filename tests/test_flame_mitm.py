"""SNACK/MUNCH/GADGET: the WPAD + Windows Update MITM (Figs. 2-3)."""

import pytest

from repro.certs.tsls import ForgeryFailed
from repro.malware.flame.snack_munch_gadget import (
    WindowsUpdateMitm,
    build_forged_update,
)
from repro.netsim import (
    Internet,
    Lan,
    WindowsUpdateService,
    run_windows_update,
)
from repro.netsim.windowsupdate import UpdateRegistry


@pytest.fixture
def mitm_world(kernel, world, host_factory):
    internet = Internet(kernel)
    WindowsUpdateService(world, internet)
    lan = Lan(kernel, "office", internet=internet)
    proxy = host_factory("PROXY")
    victim = host_factory("VICTIM")
    lan.attach(proxy)
    lan.attach(victim)
    registry = UpdateRegistry()
    infected = []
    image, rogue = build_forged_update(
        world, lambda h, p: infected.append(h.hostname), registry)
    mitm = WindowsUpdateMitm(kernel, proxy, image).install()
    return {"lan": lan, "proxy": proxy, "victim": victim,
            "registry": registry, "mitm": mitm, "infected": infected,
            "image": image, "rogue": rogue}


def test_forged_update_carries_code_signing_rogue_cert(mitm_world):
    rogue = mitm_world["rogue"]
    assert rogue.allows("code-signing")
    assert rogue.signature_algorithm == "weakmd5"


def test_wpad_hijack_points_victim_at_proxy(mitm_world):
    lan, victim = mitm_world["lan"], mitm_world["victim"]
    config = lan.browser_start(victim)
    assert config.proxy_hostname == "PROXY"
    assert mitm_world["mitm"].wpad_requests_answered == 1


def test_full_mitm_installs_via_windows_update(mitm_world):
    lan, victim = mitm_world["lan"], mitm_world["victim"]
    lan.browser_start(victim)
    outcome = run_windows_update(victim, lan, mitm_world["registry"])
    assert outcome["installed"]
    assert outcome["verified"]
    assert outcome["signer"] == "MS"
    assert mitm_world["infected"] == ["VICTIM"]
    assert mitm_world["mitm"].updates_intercepted == 1


def test_victim_without_proxy_gets_genuine_update(mitm_world):
    lan, victim = mitm_world["lan"], mitm_world["victim"]
    # No browser_start: no WPAD, no proxy -> direct route to Microsoft.
    outcome = run_windows_update(victim, lan, mitm_world["registry"])
    assert outcome["installed"]
    assert outcome["signer"] == "Microsoft Windows Update Publisher"
    assert mitm_world["infected"] == []


def test_ordinary_browsing_passes_through(mitm_world, kernel, world):
    from repro.netsim.http import HttpResponse, HttpServer

    lan, victim = mitm_world["lan"], mitm_world["victim"]
    site = HttpServer("news")
    site.route("/", lambda r: HttpResponse(200, b"headline"))
    lan.internet.register_site("news.example", site)
    lan.browser_start(victim)
    response = lan.http_get(victim, "http://news.example/")
    assert response.body == b"headline"
    assert mitm_world["mitm"].requests_passed_through >= 1


def test_advisory_2718704_blocks_the_fake_update(mitm_world, world):
    lan, victim = mitm_world["lan"], mitm_world["victim"]
    victim.trust_store.mark_untrusted(world.licensing_ca_cert)
    lan.browser_start(victim)
    outcome = run_windows_update(victim, lan, mitm_world["registry"])
    assert not outcome["installed"]
    assert "untrusted" in outcome["reason"]
    assert mitm_world["infected"] == []


def test_mitm_remove_restores_network(mitm_world):
    lan, victim, mitm = (mitm_world["lan"], mitm_world["victim"],
                         mitm_world["mitm"])
    mitm.remove()
    config = lan.browser_start(victim)
    assert config is None
    outcome = run_windows_update(victim, lan, mitm_world["registry"])
    assert outcome["signer"] == "Microsoft Windows Update Publisher"


def test_forgery_fails_on_fixed_licensing_chain(world):
    """Ablation: a sha256 licensing flow defeats GADGET entirely."""
    with pytest.raises(ForgeryFailed):
        build_forged_update(world, lambda h, p: None, UpdateRegistry(),
                            licensing_algorithm="sha256")
