"""Windows Update: genuine flow and its policy checks."""

import pytest

from repro.netsim import (
    Internet,
    Lan,
    WindowsUpdateService,
    run_windows_update,
)
from repro.netsim.windowsupdate import UpdateRegistry


@pytest.fixture
def updating_world(kernel, world, host_factory):
    internet = Internet(kernel)
    service = WindowsUpdateService(world, internet)
    lan = Lan(kernel, "office", internet=internet)
    host = host_factory("PC-1")
    lan.attach(host)
    return {"lan": lan, "host": host, "service": service,
            "registry": UpdateRegistry()}


def test_genuine_update_installs(updating_world):
    outcome = run_windows_update(updating_world["host"],
                                 updating_world["lan"],
                                 updating_world["registry"])
    assert outcome["installed"]
    assert outcome["verified"]
    assert outcome["signer"] == "Microsoft Windows Update Publisher"


def test_update_disabled_host_skips(updating_world, host_factory):
    host = host_factory("PC-2", auto_update_enabled=False)
    updating_world["lan"].attach(host)
    outcome = run_windows_update(host, updating_world["lan"])
    assert not outcome["installed"]
    assert "disabled" in outcome["reason"]


def test_air_gapped_host_cannot_update(kernel, host_factory, updating_world):
    lan = Lan(kernel, "plant", internet=None)
    host = host_factory("PLANT-PC")
    lan.attach(host)
    outcome = run_windows_update(host, lan)
    assert not outcome["installed"]
    assert "unreachable" in outcome["reason"]


def test_update_registry_attaches_payload(updating_world):
    service = updating_world["service"]
    seen = []
    updating_world["registry"].register(service.genuine_image,
                                        lambda h, p: seen.append(h.hostname))
    outcome = run_windows_update(updating_world["host"],
                                 updating_world["lan"],
                                 updating_world["registry"])
    assert outcome["installed"]
    assert seen == ["PC-1"]


def test_unsigned_update_rejected(kernel, world, host_factory):
    """A tampered update server serving unsigned binaries is refused."""
    from repro.netsim.http import HttpResponse, HttpServer
    from repro.netsim.windowsupdate import UPDATE_PATH, WINDOWS_UPDATE_DOMAIN
    from repro.pe import PeBuilder

    internet = Internet(kernel)
    rogue = HttpServer("rogue-wu")
    builder = PeBuilder()
    builder.add_code_section(b"malicious unsigned update")
    image = builder.build()
    rogue.route(UPDATE_PATH, lambda request: HttpResponse(200, image))
    internet.register_site(WINDOWS_UPDATE_DOMAIN, rogue)
    lan = Lan(kernel, "office", internet=internet)
    host = host_factory("PC-3")
    lan.attach(host)
    outcome = run_windows_update(host, lan)
    assert not outcome["installed"]
    assert "unsigned" in outcome["reason"]
    assert host.event_log.entries(source="windows-update", severity="warning")


def test_garbage_update_rejected(kernel, world, host_factory):
    from repro.netsim.http import HttpResponse, HttpServer
    from repro.netsim.windowsupdate import UPDATE_PATH, WINDOWS_UPDATE_DOMAIN

    internet = Internet(kernel)
    rogue = HttpServer("rogue-wu")
    rogue.route(UPDATE_PATH, lambda request: HttpResponse(200, b"garbage"))
    internet.register_site(WINDOWS_UPDATE_DOMAIN, rogue)
    lan = Lan(kernel, "office", internet=internet)
    host = host_factory("PC-4")
    lan.attach(host)
    outcome = run_windows_update(host, lan)
    assert not outcome["installed"]
    assert "unparseable" in outcome["reason"]
