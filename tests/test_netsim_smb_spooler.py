"""SMB share access, psexec, and the print-spooler exploit."""

import pytest

from repro.netsim import (
    Internet,
    Lan,
    SmbError,
    send_crafted_print_request,
    smb_accessible,
    smb_copy_and_execute,
    smb_list_shares,
)
from repro.netsim.smb import smb_copy_file, smb_read_file
from repro.netsim.spooler import MOF_TRIGGER_DELAY
from repro.winsim import IntegrityLevel


@pytest.fixture
def lan_pair(kernel, host_factory):
    lan = Lan(kernel, "corp", internet=Internet(kernel))
    src = host_factory("SRC", file_and_print_sharing=True)
    dst = host_factory("DST", file_and_print_sharing=True)
    lan.attach(src)
    lan.attach(dst)
    return lan, src, dst


def test_access_probe_with_domain_credential(lan_pair):
    lan, src, dst = lan_pair
    assert smb_accessible(lan, src, dst, lan.domain_admin_credential)


def test_access_denied_with_bad_credential(lan_pair):
    lan, src, dst = lan_pair
    assert not smb_accessible(lan, src, dst, "guessed-password")


def test_access_denied_when_sharing_off(kernel, host_factory):
    lan = Lan(kernel, "corp")
    src = host_factory("S", file_and_print_sharing=True)
    dst = host_factory("D", file_and_print_sharing=False)
    lan.attach(src)
    lan.attach(dst)
    assert not smb_accessible(lan, src, dst, lan.domain_admin_credential)


def test_off_lan_target_raises(kernel, host_factory, lan_pair):
    lan, src, _ = lan_pair
    stranger = host_factory("STRANGER")
    with pytest.raises(SmbError):
        smb_accessible(lan, src, stranger, lan.domain_admin_credential)


def test_list_shares(lan_pair):
    lan, src, dst = lan_pair
    dst.share_folder("docs", "c:\\shared\\docs")
    assert smb_list_shares(lan, src, dst, lan.domain_admin_credential) == ["docs"]
    with pytest.raises(SmbError):
        smb_list_shares(lan, src, dst, "bad-cred")


def test_copy_and_read_file(lan_pair):
    lan, src, dst = lan_pair
    cred = lan.domain_admin_credential
    smb_copy_file(lan, src, dst, cred, b"payload", "c:\\dropped.bin")
    assert smb_read_file(lan, src, dst, cred, "c:\\dropped.bin") == b"payload"
    with pytest.raises(SmbError):
        smb_read_file(lan, src, dst, cred, "c:\\missing.bin")


def test_psexec_runs_at_admin_integrity(lan_pair):
    lan, src, dst = lan_pair
    integrities = []
    process = smb_copy_and_execute(
        lan, src, dst, lan.domain_admin_credential, b"exe bytes",
        "c:\\windows\\system32\\trksvr.exe",
        payload=lambda h, p: integrities.append((h.hostname, p.integrity)),
    )
    assert integrities == [("DST", IntegrityLevel.ADMIN)]
    assert process.name == "trksvr.exe"


def test_spooler_exploit_drops_and_fires(kernel, lan_pair):
    lan, src, dst = lan_pair
    fired = []
    documents = [
        ("sysnullevnt.mof", b"mof", None),
        ("winsta.exe", b"dropper", lambda h, p: fired.append(p.integrity)),
    ]
    assert send_crafted_print_request(lan, src, dst, documents)
    assert dst.vfs.exists("c:\\windows\\system32\\winsta.exe")
    assert dst.vfs.exists("c:\\windows\\system32\\sysnullevnt.mof")
    assert fired == []  # not yet: the MOF machinery is lazy
    kernel.run_for(MOF_TRIGGER_DELAY + 1)
    assert fired == [IntegrityLevel.SYSTEM]


def test_spooler_patched_host_rejects(kernel, lan_pair):
    lan, src, dst = lan_pair
    dst.patches.apply("MS10-061")
    documents = [("sysnullevnt.mof", b"m", None), ("winsta.exe", b"d", None)]
    assert not send_crafted_print_request(lan, src, dst, documents)
    assert not dst.vfs.exists("c:\\windows\\system32\\winsta.exe")
    assert dst.event_log.entries(source="print-spooler")


def test_spooler_requires_sharing(kernel, host_factory):
    lan = Lan(kernel, "corp")
    src = host_factory("S", file_and_print_sharing=True)
    dst = host_factory("D", file_and_print_sharing=False)
    lan.attach(src)
    lan.attach(dst)
    assert not send_crafted_print_request(
        lan, src, dst, [("a.mof", b"", None), ("b.exe", b"", None)])


def test_spooler_deleted_dropper_does_not_fire(kernel, lan_pair):
    lan, src, dst = lan_pair
    fired = []
    documents = [
        ("sysnullevnt.mof", b"m", None),
        ("winsta.exe", b"d", lambda h, p: fired.append(1)),
    ]
    send_crafted_print_request(lan, src, dst, documents)
    dst.vfs.delete("c:\\windows\\system32\\winsta.exe")
    kernel.run_for(MOF_TRIGGER_DELAY + 1)
    assert fired == []
