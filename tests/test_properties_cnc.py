"""Property-based tests: C&C database and domain pool invariants."""

from hypothesis import given, settings, strategies as st

from repro.cnc import DomainPool, MiniDatabase
from repro.sim import DeterministicRandom

_name = st.text(alphabet="abcdef", min_size=1, max_size=6)


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.tuples(_name, st.integers(min_value=0, max_value=5)),
                     max_size=20))
def test_db_count_matches_inserts(rows):
    db = MiniDatabase()
    for name, value in rows:
        db.insert("t", name=name, value=value)
    assert db.count("t") == len(rows)
    for name, value in rows:
        matches = db.select("t", name=name, value=value)
        assert any(r["name"] == name and r["value"] == value
                   for r in matches)


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.integers(min_value=0, max_value=3), max_size=20),
       doomed=st.integers(min_value=0, max_value=3))
def test_db_delete_partitions_rows(rows, doomed):
    db = MiniDatabase()
    for value in rows:
        db.insert("t", value=value)
    removed = db.delete("t", value=doomed)
    assert removed == rows.count(doomed)
    assert db.count("t") == len(rows) - removed
    assert all(r["value"] != doomed for r in db.select("t"))


@settings(max_examples=50, deadline=None)
@given(updates=st.lists(st.tuples(_name, st.integers()), min_size=1,
                        max_size=10))
def test_db_update_is_visible(updates):
    db = MiniDatabase()
    db.insert("t", key="fixed", value=None)
    for _, value in updates:
        db.update("t", {"key": "fixed"}, {"value": value})
    assert db.select_one("t", key="fixed")["value"] == updates[-1][1]


@settings(max_examples=30, deadline=None)
@given(count=st.integers(min_value=1, max_value=120),
       servers=st.integers(min_value=1, max_value=30),
       seed=st.integers(min_value=0, max_value=1000))
def test_domain_pool_invariants(count, servers, seed):
    pool = DomainPool(DeterministicRandom(seed))
    ips = ["ip-%03d" % i for i in range(servers)]
    pool.register_many(count, ips)
    assert len(pool) == count
    assert len(set(pool.domains())) == count          # all names unique
    assert set(pool.server_ips()) <= set(ips)
    # Partition: each domain belongs to exactly one server's list.
    total = sum(len(pool.domains_for_server(ip)) for ip in ips)
    assert total == count
    # Histogram sums to the pool size.
    assert sum(pool.country_histogram().values()) == count


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_domain_pool_deterministic_per_seed(seed):
    a = DomainPool(DeterministicRandom(seed))
    b = DomainPool(DeterministicRandom(seed))
    a.register_many(30, ["x", "y"])
    b.register_many(30, ["x", "y"])
    assert a.domains() == b.domains()
    assert a.country_histogram() == b.country_histogram()
