"""Mode-differential harness: every dispatch path, one payload.

The determinism pillar of the sweep engine, asserted at full strength:
for every registered campaign spec (including both epidemic scenarios),
serial, warm-pool parallel, supervised, and adaptive-fallback dispatch
must produce byte-identical ``SweepResult`` payloads — measurements,
trace digests, merged metrics, aggregates — across worker counts and
chunk sizes.  The oracle is ``as_dict()`` equality after stripping only
the fields that are *documented* as wall-clock-bound (timings, pool
bookkeeping, the supervision report): everything derived from replica
data must match to the byte, which the canonical-JSON comparison
enforces.
"""

import json

import pytest

from repro.core.ensemble import CAMPAIGNS, CampaignSpec
from repro.sim.sweep import SweepConfig, run_sweep

BASE_SEED = 1307
REPLICAS = 3

#: Dispatch bookkeeping that legitimately differs between modes: wall
#: clock, pool shape, and the (inherently nondeterministic) supervision
#: and dispatch reports.  Everything else must be byte-identical.
VOLATILE_TOP_LEVEL = ("wall_seconds", "mode", "workers", "chunk_size",
                      "supervision", "dispatch")

ALL_CAMPAIGNS = sorted(CAMPAIGNS)

#: The cheapest registered campaign carries the full pool-shape grid;
#: every campaign still gets each dispatch path once.
GRID_CAMPAIGN = "stuxnet-epidemic"
GRID_REPLICAS = 5


def canonical(result):
    """Canonical JSON for everything a sweep's replicas determine."""
    payload = result.as_dict()
    for key in VOLATILE_TOP_LEVEL:
        payload.pop(key, None)
    for replica in payload["replicas"]:
        replica.pop("wall_seconds", None)
    return json.dumps(payload, sort_keys=True, default=str)


_serial_cache = {}


def serial_payload(campaign, replicas=REPLICAS):
    """Cached canonical payload of the serial reference sweep."""
    key = (campaign, replicas)
    if key not in _serial_cache:
        result = run_sweep(
            CampaignSpec.quick(campaign),
            SweepConfig(replicas=replicas, mode="serial",
                        base_seed=BASE_SEED))
        assert result.dispatch["path"] == "serial"
        _serial_cache[key] = canonical(result)
    return _serial_cache[key]


@pytest.mark.parametrize("campaign", ALL_CAMPAIGNS)
def test_warm_pool_parallel_matches_serial(campaign):
    # fallback=False pins the decision: this test is about the pool
    # path itself (the adaptive decision has its own test below), and
    # the quick epidemic replicas are cheap enough to legitimately sit
    # below break-even on a fast machine.
    result = run_sweep(
        CampaignSpec.quick(campaign),
        SweepConfig(replicas=REPLICAS, workers=2, mode="parallel",
                    base_seed=BASE_SEED, fallback=False))
    assert result.dispatch["path"] == "warm-pool"
    assert result.dispatch["probe_seconds"] > 0
    assert canonical(result) == serial_payload(campaign)


@pytest.mark.parametrize("campaign", ALL_CAMPAIGNS)
def test_adaptive_auto_decision_is_still_byte_identical(campaign):
    # Leave the adaptive machinery fully enabled and let it choose:
    # whichever path it picks on this machine, the payload must match
    # the serial reference byte for byte.
    result = run_sweep(
        CampaignSpec.quick(campaign),
        SweepConfig(replicas=REPLICAS, workers=2, mode="parallel",
                    base_seed=BASE_SEED))
    assert result.dispatch["path"] in ("warm-pool", "serial-fallback")
    assert canonical(result) == serial_payload(campaign)


@pytest.mark.parametrize("campaign", ALL_CAMPAIGNS)
def test_supervised_matches_serial(campaign):
    result = run_sweep(
        CampaignSpec.quick(campaign),
        SweepConfig(replicas=REPLICAS, workers=2, mode="supervised",
                    base_seed=BASE_SEED))
    assert result.dispatch["path"] == "supervised"
    assert result.complete()
    assert canonical(result) == serial_payload(campaign)


@pytest.mark.parametrize("campaign", ALL_CAMPAIGNS)
def test_adaptive_fallback_matches_serial(campaign):
    # An absurd break-even forces the fallback decision; the payload
    # must not budge, because the fallback runs the very same
    # run_replica from the very same pure per-replica seeds.
    result = run_sweep(
        CampaignSpec.quick(campaign),
        SweepConfig(replicas=REPLICAS, workers=2, mode="parallel",
                    base_seed=BASE_SEED, fallback_threshold=1e9))
    assert result.dispatch["path"] == "serial-fallback"
    assert result.dispatch["estimated_seconds"] < 1e9
    assert canonical(result) == serial_payload(campaign)


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("chunk_size", (1, 3, None))
def test_parallel_grid_is_payload_invariant(workers, chunk_size):
    config = SweepConfig(replicas=GRID_REPLICAS, workers=workers,
                         chunk_size=chunk_size, mode="parallel",
                         base_seed=BASE_SEED, fallback=False)
    result = run_sweep(CampaignSpec.quick(GRID_CAMPAIGN), config)
    assert result.dispatch["path"] == "warm-pool"
    assert canonical(result) == serial_payload(GRID_CAMPAIGN,
                                               GRID_REPLICAS)


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("chunk_size", (1, 3, None))
def test_supervised_grid_is_payload_invariant(workers, chunk_size):
    config = SweepConfig(replicas=GRID_REPLICAS, workers=workers,
                         chunk_size=chunk_size, mode="supervised",
                         base_seed=BASE_SEED)
    result = run_sweep(CampaignSpec.quick(GRID_CAMPAIGN), config)
    assert result.complete()
    assert canonical(result) == serial_payload(GRID_CAMPAIGN,
                                               GRID_REPLICAS)


def test_dispatch_record_names_the_path_taken():
    """`dispatch` is the machine-checkable record of which path ran."""
    spec = CampaignSpec.quick(GRID_CAMPAIGN)
    serial = run_sweep(spec, SweepConfig(replicas=2, mode="serial",
                                         base_seed=BASE_SEED))
    assert serial.dispatch["path"] == "serial"
    assert serial.dispatch["requested_mode"] == "serial"
    pooled = run_sweep(spec, SweepConfig(
        replicas=2, workers=2, mode="parallel", base_seed=BASE_SEED,
        fallback=False, chunk_size=1))
    assert pooled.dispatch["path"] == "warm-pool"
    assert pooled.dispatch["fallback_enabled"] is False
    # auto on a single-replica ensemble resolves to serial outright.
    auto = run_sweep(spec, SweepConfig(replicas=1, workers=4,
                                       base_seed=BASE_SEED))
    assert auto.dispatch["requested_mode"] == "auto"
    assert auto.dispatch["path"] == "serial"
    rendered = pooled.as_dict()
    assert rendered["dispatch"] is pooled.dispatch
