"""Synthetic PE format: build/parse round trips and policy surface."""

import pytest

from repro.pe import (
    MACHINE_AMD64,
    MACHINE_I386,
    PeBuilder,
    PeFormatError,
    machine_name,
    parse_pe,
)


def _basic_builder():
    builder = PeBuilder(machine=MACHINE_I386, timestamp=1234, subsystem=2)
    builder.add_code_section(b"some code bytes")
    builder.add_section(".data", b"initialised data")
    builder.add_import("kernel32.dll", ["CreateFileA", "WriteFile"])
    builder.add_resource("CONFIG", b"plain resource")
    builder.add_encrypted_resource("PKCS7", b"hidden component", b"\xba")
    return builder


def test_round_trip_preserves_structure():
    image = _basic_builder().build()
    pe = parse_pe(image)
    assert pe.machine == MACHINE_I386
    assert pe.machine_label == "x86"
    assert pe.timestamp == 1234
    assert [s.name for s in pe.sections] == [".text", ".data", ".rsrc", ".idata"]
    assert pe.section(".data").data == b"initialised data"
    assert pe.imported_functions() == ["kernel32.dll!CreateFileA",
                                       "kernel32.dll!WriteFile"]


def test_resources_round_trip_and_decrypt():
    pe = parse_pe(_basic_builder().build())
    assert pe.resource("CONFIG").decrypt() == b"plain resource"
    encrypted = pe.resource("PKCS7")
    assert encrypted.encrypted
    assert encrypted.data != b"hidden component"
    assert encrypted.decrypt() == b"hidden component"
    assert [r.name for r in pe.encrypted_resources()] == ["PKCS7"]


def test_x64_machine():
    builder = PeBuilder(machine=MACHINE_AMD64)
    builder.add_code_section(b"x64 code")
    pe = parse_pe(builder.build())
    assert pe.machine_label == "x64"


def test_target_size_padding_exact():
    image = _basic_builder().build(target_size=64 * 1024)
    assert len(image) == 64 * 1024
    pe = parse_pe(image)
    assert pe.section(".pad").size > 0


def test_target_size_too_small_rejected():
    with pytest.raises(PeFormatError):
        _basic_builder().build(target_size=64)


def test_unsigned_image_has_no_signature():
    pe = parse_pe(_basic_builder().build())
    assert not pe.is_signed
    assert pe.signature_blob is None


def test_signature_blob_round_trip():
    builder = _basic_builder()
    builder.set_signature_blob(b"opaque signature bytes")
    image = builder.build()
    pe = parse_pe(image)
    assert pe.is_signed
    assert pe.signature_blob == b"opaque signature bytes"
    assert pe.signed_span < len(image)


def test_duplicate_section_rejected():
    builder = PeBuilder()
    builder.add_section(".a", b"1")
    with pytest.raises(PeFormatError):
        builder.add_section(".a", b"2")


def test_overlong_section_name_rejected():
    with pytest.raises(PeFormatError):
        PeBuilder().add_section(".waytoolongname", b"")


def test_unknown_machine_rejected():
    with pytest.raises(PeFormatError):
        PeBuilder(machine=0x1234)


def test_parse_garbage_raises():
    with pytest.raises(PeFormatError):
        parse_pe(b"not a pe at all")
    with pytest.raises(PeFormatError):
        parse_pe(b"MZ" + b"\x00" * 10)  # truncated


def test_parse_truncated_section_raises():
    image = bytearray(_basic_builder().build())
    truncated = bytes(image[: len(image) // 2])
    with pytest.raises(PeFormatError):
        parse_pe(truncated)


def test_missing_section_and_resource_lookups():
    pe = parse_pe(_basic_builder().build())
    with pytest.raises(KeyError):
        pe.section(".nope")
    with pytest.raises(KeyError):
        pe.resource("NOPE")


def test_machine_name_unknown():
    assert "unknown" in machine_name(0x9999)
