"""USB drives: autorun, crafted LNKs, the hidden courier DB."""

import pytest

from repro.usb import (
    HIDDEN_DB_FILENAME,
    HiddenDatabase,
    UsbDrive,
    craft_lnk_files,
    make_autorun,
)


def test_drive_file_management():
    drive = UsbDrive("stick")
    drive.write("Report.DOCX", b"doc")
    assert drive.exists("report.docx")
    assert drive.get("report.docx").size == 3
    assert drive.delete("report.docx")
    assert not drive.delete("report.docx")


def test_hidden_files_excluded_from_explorer_view():
    drive = UsbDrive("stick")
    drive.write("visible.txt", b"")
    drive.write("secretdb", b"", hidden=True)
    assert [f.name for f in drive.files()] == ["visible.txt"]
    assert len(drive.files(include_hidden=True)) == 2


def test_autorun_fires_only_when_enabled(host_factory):
    fired = []
    drive = UsbDrive("stick")
    drive.add_file(make_autorun(lambda h, d: fired.append(h.hostname)))
    modern = host_factory("MODERN", autorun_enabled=False)
    modern.insert_usb(drive, open_in_explorer=False)
    assert fired == []
    legacy = host_factory("LEGACY", autorun_enabled=True)
    legacy.insert_usb(drive, open_in_explorer=False)
    assert fired == ["LEGACY"]


def test_lnk_files_cover_all_os_versions():
    files = craft_lnk_files(lambda h, d: None)
    names = [f.name for f in files]
    assert len(files) == 4
    assert any("xp" in n for n in names)
    assert any("server2003" in n for n in names)


def test_lnk_fires_on_matching_unpatched_host(host_factory):
    fired = []
    drive = UsbDrive("stick")
    for f in craft_lnk_files(lambda h, d: fired.append(h.hostname)):
        drive.add_file(f)
    victim = host_factory("XP-BOX", os_version="xp")
    victim.insert_usb(drive)  # explorer opens by default
    assert fired == ["XP-BOX"]


def test_lnk_silent_on_patched_host(host_factory):
    fired = []
    drive = UsbDrive("stick")
    for f in craft_lnk_files(lambda h, d: fired.append(1)):
        drive.add_file(f)
    victim = host_factory("PATCHED", os_version="7")
    victim.patches.apply("MS10-046")
    victim.insert_usb(drive)
    assert fired == []
    assert victim.event_log.entries(source="shell")


def test_lnk_only_fires_for_matching_version(host_factory):
    fired = []
    drive = UsbDrive("stick")
    for f in craft_lnk_files(lambda h, d: fired.append(1), os_versions=("xp",)):
        drive.add_file(f)
    victim = host_factory("SEVEN", os_version="7")
    victim.insert_usb(drive)
    assert fired == []


def test_visit_history_tracks_internet_exposure(kernel, host_factory, world):
    from repro.netsim import Internet, Lan

    drive = UsbDrive("courier")
    airgapped_lan = Lan(kernel, "plant", internet=None)
    connected_lan = Lan(kernel, "office", internet=Internet(kernel))
    a = host_factory("PLANT-1")
    b = host_factory("OFFICE-1")
    airgapped_lan.attach(a)
    connected_lan.attach(b)
    a.insert_usb(drive, open_in_explorer=False)
    assert not drive.visited_internet_connected_host()
    b.insert_usb(drive, open_in_explorer=False)
    assert drive.visited_internet_connected_host()


def test_hidden_db_create_and_persist():
    drive = UsbDrive("stick")
    assert not HiddenDatabase.exists_on(drive)
    db = HiddenDatabase.load_or_create(drive)
    assert HiddenDatabase.exists_on(drive)
    assert drive.get(HIDDEN_DB_FILENAME).hidden
    db.store_document("HOST-A", "c:\\secret.docx", 1000, "ext=docx")
    # Reload from the drive: state survived.
    db2 = HiddenDatabase.load_or_create(drive)
    assert db2.documents()[0]["path"] == "c:\\secret.docx"
    assert db2.used_bytes() == 1000


def test_hidden_db_capacity_limit():
    drive = UsbDrive("stick")
    db = HiddenDatabase.load_or_create(drive)
    assert db.store_document("H", "a", 10 * 1024 * 1024, "")
    assert not db.store_document("H", "b", 10 * 1024 * 1024, "")
    assert len(db.documents()) == 1


def test_hidden_db_drain():
    drive = UsbDrive("stick")
    db = HiddenDatabase.load_or_create(drive)
    db.store_document("H", "a", 10, "")
    db.store_document("H", "b", 20, "")
    drained = db.drain_documents()
    assert len(drained) == 2
    assert db.documents() == []
    assert db.used_bytes() == 0


def test_hidden_db_internet_stamp():
    drive = UsbDrive("stick")
    db = HiddenDatabase.load_or_create(drive)
    assert not db.seen_internet
    db.mark_internet_connected()
    assert HiddenDatabase.load_or_create(drive).seen_internet
