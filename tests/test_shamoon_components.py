"""Shamoon components: TrkSvr image, wiper, reporter (Fig. 6)."""

import pytest

from repro.malware.shamoon import (
    BURNING_FLAG_JPEG,
    JPEG_FRAGMENT_SIZE,
    RESOURCE_REPORTER,
    RESOURCE_WIPER,
    RESOURCE_X64,
    TRKSVR_SIZE,
    XOR_KEY,
    build_trksvr_image,
    run_wiper,
)
from repro.malware.shamoon.wiper import (
    build_eldos_driver_image,
    collect_target_files,
)
from repro.pe import parse_pe


def test_trksvr_image_shape():
    image = build_trksvr_image()
    assert len(image) == TRKSVR_SIZE  # the characteristic 900 KB
    pe = parse_pe(image)
    assert pe.machine_label == "x86"
    names = [r.name for r in pe.resources]
    assert names == [RESOURCE_WIPER, RESOURCE_REPORTER, RESOURCE_X64]
    assert all(r.encrypted for r in pe.resources)


def test_resources_decrypt_with_simple_xor():
    pe = parse_pe(build_trksvr_image())
    wiper = pe.resource(RESOURCE_WIPER)
    assert wiper.xor_key == XOR_KEY
    assert b"wiper" in wiper.decrypt()
    # The last resource is the 64-bit variant: itself a PE.
    x64 = parse_pe(pe.resource(RESOURCE_X64).decrypt())
    assert x64.machine_label == "x64"


def test_burning_flag_jpeg_structure():
    assert BURNING_FLAG_JPEG[:3] == b"\xff\xd8\xff"
    assert BURNING_FLAG_JPEG.endswith(b"\xff\xd9")
    assert len(BURNING_FLAG_JPEG) > 100 * 1024
    assert JPEG_FRAGMENT_SIZE < len(BURNING_FLAG_JPEG)


def _seeded_host(host_factory, name="W-1"):
    host = host_factory(name)
    host.vfs.write("c:\\users\\u\\documents\\report.docx", b"R" * 8000)
    host.vfs.write("c:\\users\\u\\downloads\\setup.zip", b"Z" * 500)
    host.vfs.write("c:\\users\\u\\pictures\\kid.jpg", b"P" * 3000)
    host.vfs.write("c:\\users\\u\\other\\keep.txt", b"K" * 100)
    return host


def test_target_collection_covers_paper_folders(host_factory):
    host = _seeded_host(host_factory)
    f1, f2 = collect_target_files(host)
    targeted = f1 + f2
    assert len(targeted) == 3  # keep.txt is outside the named folders
    assert not any("keep.txt" in p for p in targeted)


def test_wiper_full_pass(host_factory, world):
    host = _seeded_host(host_factory)
    driver = build_eldos_driver_image(world)
    stats = run_wiper(host, driver)
    assert stats["driver_loaded"]
    assert stats["files_overwritten"] == 3
    assert stats["mbr_wiped"]
    assert stats["partition_wiped"]
    assert not host.usable()
    # f1.inf/f2.inf dropped with the target lists.
    f1 = host.vfs.read("c:\\windows\\system32\\f1.inf", raw=True)
    assert b".docx" in f1 or b".zip" in f1 or b".jpg" in f1


def test_wiper_bug_overwrites_only_upper_jpeg_part(host_factory, world):
    host = _seeded_host(host_factory)
    run_wiper(host, build_eldos_driver_image(world))
    data = host.vfs.read("c:\\users\\u\\documents\\report.docx", raw=True)
    assert data[:3] == b"\xff\xd8\xff"            # JPEG header present
    assert data[JPEG_FRAGMENT_SIZE:] == b"R" * (8000 - JPEG_FRAGMENT_SIZE)


def test_wiper_without_bug_fully_overwrites(host_factory, world):
    host = _seeded_host(host_factory)
    stats = run_wiper(host, build_eldos_driver_image(world),
                      faithful_bug=False)
    data = host.vfs.read("c:\\users\\u\\documents\\report.docx", raw=True)
    assert data[:8000] == BURNING_FLAG_JPEG[:8000]  # nothing of the original
    assert stats["bytes_overwritten"] >= stats["bytes_intended"] * 0.99


def test_wiper_blocked_when_driver_refused(host_factory, world):
    host = _seeded_host(host_factory, "HARDENED")
    from repro.certs.wellknown import ELDOS

    cert, _ = world.vendor_credentials(ELDOS)
    host.trust_store.revoke_serial(cert.serial)
    stats = run_wiper(host, build_eldos_driver_image(world))
    assert not stats["driver_loaded"]
    assert not stats["mbr_wiped"]
    assert host.usable()  # files trashed, but the machine still boots
    assert stats["files_overwritten"] == 3


def test_eldos_driver_is_legitimately_signed(world, host_factory):
    host = host_factory("CHECK")
    image = build_eldos_driver_image(world)
    pe = parse_pe(image)
    result = host.trust_store.verify_code_signature(image, pe)
    assert result
    assert result.signer == "EldoS Corporation"
