"""Disk, MBR, and partition protection semantics."""

import pytest

from repro.winsim import Disk, DiskAccessDenied, MBR_MAGIC


@pytest.fixture
def disk():
    return Disk()


def test_fresh_disk_boots(disk):
    assert disk.mbr_intact()
    assert disk.bootable()
    assert disk.mbr.endswith(MBR_MAGIC)


def test_user_mode_cannot_write_mbr(disk):
    with pytest.raises(DiskAccessDenied):
        disk.write_mbr(b"\x00" * 512)
    assert disk.mbr_intact()


def test_kernel_mode_can_write_mbr(disk):
    disk.write_mbr(b"\x00" * 512, kernel_mode=True)
    assert not disk.mbr_intact()
    assert not disk.bootable()


def test_raw_access_grant_allows_user_mode_mbr_write(disk):
    disk.grant_raw_access("drdisk.sys")
    disk.write_mbr(b"\x00" * 512, grantee="drdisk.sys")
    assert not disk.mbr_intact()


def test_revoked_grant_blocks_again(disk):
    disk.grant_raw_access("drdisk.sys")
    disk.revoke_raw_access("drdisk.sys")
    with pytest.raises(DiskAccessDenied):
        disk.write_mbr(b"\x00" * 512, grantee="drdisk.sys")


def test_wrong_grantee_blocked(disk):
    disk.grant_raw_access("drdisk.sys")
    with pytest.raises(DiskAccessDenied):
        disk.write_mbr(b"\x00" * 512, grantee="other.sys")


def test_unprotected_sector_writable_from_user_mode(disk):
    disk.write_sector(5000, b"data")
    assert disk.read_sector(5000).startswith(b"data")


def test_sector_bounds(disk):
    with pytest.raises(ValueError):
        disk.read_sector(disk.total_sectors)
    with pytest.raises(ValueError):
        disk.write_sector(-1, b"", kernel_mode=True)
    with pytest.raises(ValueError):
        disk.write_sector(5000, b"x" * 513)


def test_sectors_padded_to_full_size(disk):
    disk.write_sector(5000, b"ab")
    assert len(disk.read_sector(5000)) == 512


def test_untouched_sector_reads_zeros(disk):
    assert disk.read_sector(12345) == b"\x00" * 512


def test_wipe_active_partition_kills_boot(disk):
    partition = disk.active_partition()
    disk.wipe_partition(partition, kernel_mode=True)
    assert partition.wiped
    assert not disk.bootable()
    assert disk.mbr_intact()  # partition wipe alone leaves the MBR


def test_wipe_partition_requires_privilege(disk):
    with pytest.raises(DiskAccessDenied):
        disk.wipe_partition(disk.active_partition())
