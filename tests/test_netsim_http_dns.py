"""HTTP primitives and DNS (incl. sinkholing)."""

from repro.netsim import DnsServer, HttpRequest, HttpResponse, HttpServer
from repro.netsim.http import url_host, url_path


def test_url_parsing():
    assert url_host("http://a.com/x/y") == "a.com"
    assert url_path("http://a.com/x/y") == "/x/y"
    assert url_path("http://a.com") == "/"
    assert url_host("a.com/z") == "a.com"


def test_request_params_and_size():
    request = HttpRequest("get", "http://h/p", params={"a": "1"}, body=b"xy")
    assert request.method == "GET"
    assert request.path == "/p"
    assert request.size > 2


def test_response_ok_and_helpers():
    assert HttpResponse(200).ok
    assert not HttpResponse.not_found().ok
    assert HttpResponse.error().status == 500
    assert HttpResponse(200, "text").body == b"text"


def test_server_routes_and_404():
    server = HttpServer("test")
    server.route("/hello", lambda request: HttpResponse(200, b"hi"))
    ok = server.handle(HttpRequest("GET", "http://x/hello"))
    missing = server.handle(HttpRequest("GET", "http://x/nope"))
    assert ok.body == b"hi"
    assert missing.status == 404
    assert server.requests_seen() == 2


def test_server_prefix_routes():
    server = HttpServer("test")
    server.route("/api/", lambda request: HttpResponse(200, b"api"), prefix=True)
    assert server.handle(HttpRequest("GET", "http://x/api/v1/thing")).ok


def test_dns_register_resolve():
    dns = DnsServer()
    dns.register("Example.COM", "1.2.3.4")
    assert dns.resolve("example.com") == "1.2.3.4"
    assert dns.resolve("example.com.") == "1.2.3.4"
    assert dns.resolve("other.com") is None


def test_dns_unregister():
    dns = DnsServer()
    dns.register("a.com", "1.1.1.1")
    assert dns.unregister("a.com")
    assert not dns.unregister("a.com")
    assert dns.resolve("a.com") is None


def test_dns_sinkhole_redirects_resolution():
    dns = DnsServer()
    dns.register("cnc.evil", "6.6.6.6")
    assert dns.sinkhole("cnc.evil")
    assert dns.is_sinkholed("cnc.evil")
    assert dns.resolve("cnc.evil") == "sinkhole.research.net"
    # Sinkholing an unknown name reports failure.
    assert not dns.sinkhole("never-registered.com")


def test_dns_query_log():
    dns = DnsServer()
    dns.register("a.com", "1.1.1.1")
    dns.resolve("a.com", client="victim-1")
    dns.resolve("a.com", client="victim-2")
    assert len(dns.queries_for("a.com")) == 2
    assert dns.registered_names() == ["a.com"]
