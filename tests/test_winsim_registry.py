"""Registry semantics."""

import pytest

from repro.winsim import Registry


@pytest.fixture
def registry():
    return Registry()


def test_set_get_case_insensitive(registry):
    registry.set_value(r"HKLM\Software\Test", "Name", "value")
    assert registry.get_value(r"hklm\software\test", "name") == "value"


def test_get_missing_returns_default(registry):
    assert registry.get_value(r"hklm\nope", "x") is None
    assert registry.get_value(r"hklm\nope", "x", default=42) == 42


def test_delete_value(registry):
    registry.set_value(r"hklm\k", "a", 1)
    assert registry.delete_value(r"hklm\k", "a")
    assert not registry.delete_value(r"hklm\k", "a")
    assert registry.get_value(r"hklm\k", "a") is None


def test_delete_key_removes_subtree(registry):
    registry.set_value(r"hklm\svc\trksvr", "imagepath", "x")
    registry.set_value(r"hklm\svc\trksvr\params", "p", 1)
    assert registry.delete_key(r"hklm\svc\trksvr")
    assert not registry.key_exists(r"hklm\svc\trksvr")
    assert not registry.key_exists(r"hklm\svc\trksvr\params")


def test_subkeys(registry):
    registry.set_value(r"hklm\services\a", "v", 1)
    registry.set_value(r"hklm\services\b", "v", 1)
    registry.set_value(r"hklm\services\b\deep", "v", 1)
    assert registry.subkeys(r"hklm\services") == ["a", "b"]


def test_values_returns_copy(registry):
    registry.set_value(r"hklm\k", "a", 1)
    values = registry.values(r"hklm\k")
    values["a"] = 999
    assert registry.get_value(r"hklm\k", "a") == 1


def test_snapshot_is_deep(registry):
    registry.set_value(r"hklm\k", "a", 1)
    snap = registry.snapshot()
    registry.set_value(r"hklm\k", "a", 2)
    assert snap[r"hklm\k"]["a"] == 1


def test_empty_key_rejected(registry):
    with pytest.raises(ValueError):
        registry.set_value("", "a", 1)


def test_all_keys_sorted(registry):
    registry.set_value(r"hklm\b", "x", 1)
    registry.set_value(r"hklm\a", "x", 1)
    assert registry.all_keys() == [r"hklm\a", r"hklm\b"]
