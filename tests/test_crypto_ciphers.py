"""XOR and RC4 cipher behaviour."""

import pytest

from repro.crypto import Rc4Cipher, xor_decrypt, xor_encrypt
from repro.crypto.ciphers import xor_stream


def test_xor_round_trip():
    data = b"shamoon wiper component"
    key = b"\xba"
    assert xor_decrypt(xor_encrypt(data, key), key) == data


def test_xor_with_multibyte_key():
    data = bytes(range(256))
    key = b"k3y!"
    encrypted = xor_encrypt(data, key)
    assert encrypted != data
    assert xor_decrypt(encrypted, key) == data


def test_xor_accepts_int_key():
    assert xor_encrypt(b"\x00\x00", 0xBA) == b"\xba\xba"


def test_xor_empty_key_rejected():
    with pytest.raises(ValueError):
        xor_encrypt(b"data", b"")


def test_xor_is_involution():
    data = b"double application restores"
    key = b"abc"
    assert xor_encrypt(xor_encrypt(data, key), key) == data


def test_xor_stream_matches_slow_path():
    data = bytes(range(256)) * 41  # not a multiple of the key length
    key = b"\x01\x02\x03\x04\x05"
    assert xor_stream(data, key) == xor_encrypt(data, key)


def test_xor_stream_empty_data():
    assert xor_stream(b"", b"key") == b""


def test_rc4_round_trip():
    data = b"stolen document body " * 10
    key = b"session-key"
    assert Rc4Cipher.decrypt(key, Rc4Cipher.encrypt(key, data)) == data


def test_rc4_known_vector():
    # Classic RC4 test vector: key "Key", plaintext "Plaintext".
    out = Rc4Cipher.encrypt(b"Key", b"Plaintext")
    assert out == bytes.fromhex("bbf316e8d940af0ad3")


def test_rc4_keystream_continues_across_calls():
    cipher = Rc4Cipher(b"k")
    first = cipher.process(b"aaaa")
    second = cipher.process(b"aaaa")
    assert first != second  # keystream advanced
    cipher.reset()
    assert cipher.process(b"aaaa") == first


def test_rc4_empty_key_rejected():
    with pytest.raises(ValueError):
        Rc4Cipher(b"")


def test_rc4_different_keys_differ():
    data = b"same plaintext"
    assert Rc4Cipher.encrypt(b"k1", data) != Rc4Cipher.encrypt(b"k2", data)
