"""Smoke tests: every example script runs to completion.

Each example is executed as a real subprocess (the way a reader would
run it) with ``REPRO_EXAMPLE_QUICK=1``, which every script honours by
shrinking its scenario to seconds.  Exit code 0 plus the presence of a
few key output lines is the contract; the examples are documentation,
and documentation that crashes is worse than none.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
SRC_DIR = REPO_ROOT / "src"

#: script -> lines that must appear on stdout (quick mode).
EXPECTED_OUTPUT = {
    "quickstart.py": (
        "1/3 STUXNET",
        "2/3 FLAME",
        "3/3 SHAMOON",
        "Done. See EXPERIMENTS.md",
    ),
    "stuxnet_natanz.py": (
        "[Level 1]",
        "[Level 3]",
        "centrifuges destroyed:",
    ),
    "flame_espionage.py": (
        "Patient zero infected:",
        "Flame went dark overnight.",
    ),
    "shamoon_aramco.py": (
        "workstations infected:",
        "workstations wiped:",
    ),
    "dissection_lab.py": (
        "[1] Static analysis",
        "Verdict: Disttrack/Shamoon.",
    ),
    "trends_survey.py": (
        "Section V trend matrix",
        "Paper claims reproduced:",
    ),
    "ensemble_sweep.py": (
        "seeded replicas",
        "mean stolen bytes:",
    ),
}


def test_every_example_has_a_smoke_test():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs_clean_in_quick_mode(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(SRC_DIR) + os.pathsep + existing
                         if existing else str(SRC_DIR))
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, env=env, timeout=300,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        "%s exited %d\nstdout:\n%s\nstderr:\n%s"
        % (script, proc.returncode, proc.stdout[-2000:], proc.stderr[-2000:]))
    for line in EXPECTED_OUTPUT[script]:
        assert line in proc.stdout, (
            "%s output missing %r\nstdout:\n%s"
            % (script, line, proc.stdout[-2000:]))
