"""Golden-trace conformance: the exported JSONL is pinned by digest.

Each campaign's quick preset runs at a fixed seed; the export's SHA-256
(over the normalised JSONL lines) is committed under ``tests/golden/``
together with the span and metric name sets.  Any behavioural drift —
a reordered event, a renamed span, a new metric — fails here first,
with the name sets giving a readable diff before the digest does.

To accept intentional changes::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py \
        --update-golden
"""

import json
import os

import pytest

from repro.core.ensemble import CAMPAIGNS, QUICK_PARAMS
from repro.obs.export import export_digest, trace_lines

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: One fixed seed per campaign; changing it is a golden update.
GOLDEN_SEED = 20130708

#: Kill-chain stages each campaign's quick run must always emit —
#: asserted independently of the digest so a missing stage is named.
REQUIRED_STAGES = {
    "stuxnet": {"stuxnet.campaign", "stuxnet.settle", "stuxnet.usb_entry",
                "stuxnet.step7_infect", "stuxnet.operation",
                "stuxnet.infect"},
    "flame": {"flame.campaign", "flame.patient_zero", "flame.wu_spread",
              "flame.operations", "flame.infect", "flame.collect",
              "flame.beetlejuice", "flame.cnc_exchange"},
    "shamoon": {"shamoon.campaign", "shamoon.dormant",
                "shamoon.patient_zero", "shamoon.operation",
                "shamoon.infect", "shamoon.wipe", "shamoon.report"},
    "stuxnet-epidemic": {"epidemic.campaign", "epidemic.seed",
                         "epidemic.spread", "epidemic.epoch",
                         "epidemic.promote"},
    "flame-epidemic": {"epidemic.campaign", "epidemic.seed",
                       "epidemic.spread", "epidemic.epoch",
                       "epidemic.promote"},
}


def _golden_path(name):
    return os.path.join(GOLDEN_DIR, "%s.json" % name)


@pytest.fixture(scope="module")
def finished_kernels():
    """Run each campaign's quick preset once for the whole module."""
    kernels = {}
    for name in sorted(CAMPAIGNS):
        campaign = CAMPAIGNS[name](seed=GOLDEN_SEED,
                                   **dict(QUICK_PARAMS[name]))
        campaign.run()
        kernels[name] = campaign.world.kernel
    return kernels


def _observed(name, kernel):
    """The facts a golden file pins, freshly computed."""
    meta = {"campaign": name, "seed": GOLDEN_SEED, "preset": "quick"}
    return {
        "campaign": name,
        "seed": GOLDEN_SEED,
        "preset": "quick",
        "digest": export_digest(kernel, meta=meta),
        "span_names": sorted(kernel.spans.names()),
        "metric_names": kernel.metrics.names(),
        "span_count": len(kernel.spans),
        "record_count": len(kernel.trace),
    }


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_export_matches_golden(name, finished_kernels, update_golden):
    observed = _observed(name, finished_kernels[name])
    path = _golden_path(name)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(observed, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return
    if not os.path.exists(path):
        pytest.fail("missing golden file %s — generate it with "
                    "--update-golden" % path)
    with open(path, encoding="utf-8") as stream:
        golden = json.load(stream)
    # Name sets first: their diffs explain most digest mismatches.
    assert observed["span_names"] == golden["span_names"]
    assert observed["metric_names"] == golden["metric_names"]
    assert observed["span_count"] == golden["span_count"]
    assert observed["record_count"] == golden["record_count"]
    assert observed["digest"] == golden["digest"], (
        "export digest drifted for %s: names and counts match, so an "
        "existing line's content changed (timing, attrs, or details); "
        "rerun with --update-golden if intentional" % name)


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_every_kill_chain_stage_is_spanned(name, finished_kernels):
    names = finished_kernels[name].spans.names()
    missing = REQUIRED_STAGES[name] - names
    assert not missing, "campaign %s never opened: %s" % (name,
                                                          sorted(missing))


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_spans_are_well_formed(name, finished_kernels):
    """Every span closed, timed sanely, and parented within the run."""
    spans = list(finished_kernels[name].spans)
    by_id = {span.span_id: span for span in spans}
    assert [span.span_id for span in spans] == list(range(1, len(spans) + 1))
    for span in spans:
        assert span.finished, "%s left open" % span
        assert span.end >= span.start
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start <= span.start


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_export_lines_are_strict_json(name, finished_kernels):
    """Every exported line survives a strict JSON round trip."""
    for line in trace_lines(finished_kernels[name]):
        text = json.dumps(line, sort_keys=True, allow_nan=False)
        assert json.loads(text) == json.loads(json.dumps(line,
                                                         sort_keys=True))


def test_same_seed_reruns_are_byte_identical(finished_kernels):
    name = "stuxnet"
    campaign = CAMPAIGNS[name](seed=GOLDEN_SEED,
                               **dict(QUICK_PARAMS[name]))
    campaign.run()
    meta = {"campaign": name, "seed": GOLDEN_SEED, "preset": "quick"}
    assert export_digest(campaign.world.kernel, meta=meta) == \
        export_digest(finished_kernels[name], meta=meta)


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_checkpointed_run_matches_golden_digest(name, finished_kernels,
                                                tmp_path):
    """Checkpoint-every-stage mode is pure observation: a run recording
    a snapshot at every kill-chain stage boundary (plus a periodic
    every-N-events hook) must land on the exact golden export digest —
    the strongest proof that checkpointing never perturbs a seeded
    run."""
    from repro.core.resume import run_checkpointed

    def factory():
        return CAMPAIGNS[name](seed=GOLDEN_SEED,
                               **dict(QUICK_PARAMS[name]))

    report = run_checkpointed(factory, str(tmp_path / name),
                              meta={"campaign": name},
                              every_events=50)
    entries = report.store.entries()
    assert len(entries) > len(REQUIRED_STAGES[name])
    # The epidemic campaigns dispatch one event per epoch — their quick
    # runs never reach the periodic threshold, and that's fine: the
    # digest equality below is the real assertion.
    if report.kernel.dispatched_events > 50:
        assert any(entry["tag"] == "periodic" for entry in entries)
    meta = {"campaign": name, "seed": GOLDEN_SEED, "preset": "quick"}
    assert export_digest(report.kernel, meta=meta) == \
        export_digest(finished_kernels[name], meta=meta)


EPIDEMIC_CAMPAIGNS = ("flame-epidemic", "stuxnet-epidemic")


def _run_epidemic(name):
    campaign = CAMPAIGNS[name](seed=GOLDEN_SEED,
                               **dict(QUICK_PARAMS[name]))
    campaign.run()
    return campaign


@pytest.mark.parametrize("name", EPIDEMIC_CAMPAIGNS)
def test_epidemic_curve_matches_golden(name, update_golden):
    """The full per-epoch infection curve is pinned, value for value —
    a drifted hazard formula or draw order fails here with the exact
    epoch and compartment named."""
    campaign = _run_epidemic(name)
    observed = {
        "campaign": name,
        "seed": GOLDEN_SEED,
        "preset": "quick",
        "curve": campaign.model.curve,
        "infections_by_vector": campaign.result["infections_by_vector"],
        "infected_by_region": campaign.result["infected_by_region"],
    }
    path = _golden_path("%s-curve" % name)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(observed, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return
    if not os.path.exists(path):
        pytest.fail("missing golden file %s — generate it with "
                    "--update-golden" % path)
    with open(path, encoding="utf-8") as stream:
        golden = json.load(stream)
    assert observed["infections_by_vector"] == \
        golden["infections_by_vector"]
    assert observed["infected_by_region"] == golden["infected_by_region"]
    for epoch, (ours, pinned) in enumerate(zip(observed["curve"],
                                               golden["curve"])):
        assert ours == pinned, "curve drifted at epoch %d" % epoch
    assert len(observed["curve"]) == len(golden["curve"])


@pytest.mark.parametrize("name", EPIDEMIC_CAMPAIGNS)
def test_epidemic_checkpoint_at_epoch_n_resumes_byte_identical(name,
                                                               tmp_path):
    """Snapshot the kernel mid-spread (epoch 5 of 10), restore onto a
    freshly built same-seed campaign, finish both — the model states
    must be byte-identical under canonical JSON, and the exports must
    share a digest."""
    from repro.sim import restore_kernel, snapshot_kernel
    from repro.sim.checkpoint import canonical_json

    params = dict(QUICK_PARAMS[name])
    baseline = CAMPAIGNS[name](seed=GOLDEN_SEED, **params)
    model = baseline.model
    model.seed_initial(baseline.initial_infections)
    model.start()
    kernel = baseline.world.kernel
    kernel.run(until=5 * 86400.0)
    assert model.epoch == 5
    envelope = snapshot_kernel(kernel)
    kernel.run(until=model.horizon_seconds())

    resumed = CAMPAIGNS[name](seed=GOLDEN_SEED, **params)
    restore_kernel(envelope, kernel=resumed.world.kernel,
                   callbacks=resumed.checkpoint_callbacks())
    assert resumed.model.epoch == 5
    resumed.world.kernel.run(until=resumed.model.horizon_seconds())

    assert canonical_json(resumed.model.snapshot_state()) == \
        canonical_json(model.snapshot_state())
    assert resumed.model.curve == model.curve
    meta = {"campaign": name, "check": "epoch-resume"}
    assert export_digest(resumed.world.kernel, meta=meta) == \
        export_digest(kernel, meta=meta)


def test_flame_tree_backend_matches_golden_digest(finished_kernels):
    """Both Lua backends drive the Flame campaign to a byte-identical
    export.  The module fixture ran on the process default (bytecode);
    re-running the same seed on the tree-walker must land on the same
    digest — the campaign-level differential check that the compiled
    VM is not merely close but observationally indistinguishable."""
    from repro.luavm import using_backend

    name = "flame"
    with using_backend("tree"):
        campaign = CAMPAIGNS[name](seed=GOLDEN_SEED,
                                   **dict(QUICK_PARAMS[name]))
        campaign.run()
    meta = {"campaign": name, "seed": GOLDEN_SEED, "preset": "quick"}
    assert export_digest(campaign.world.kernel, meta=meta) == \
        export_digest(finished_kernels[name], meta=meta)


def test_flame_resume_mid_campaign_with_compiled_cache(finished_kernels,
                                                       tmp_path):
    """Checkpoint a Flame run, cut the checkpoint log mid-campaign, and
    resume while the compiled-module cache is already warm: the replay
    reuses cached chunks (hits observed) and still reproduces the
    uninterrupted run's export digest exactly."""
    from repro.core.resume import (
        CheckpointStore,
        interrupt_after,
        resume_checkpointed,
    )
    from repro.luavm.compiler import compile_cache_stats

    name = "flame"
    directory = str(tmp_path / "flame-resume")
    meta = {"campaign": name, "seed": GOLDEN_SEED}

    def factory():
        return CAMPAIGNS[name](seed=GOLDEN_SEED,
                               **dict(QUICK_PARAMS[name]))

    run_meta = {"campaign": name, "seed": GOLDEN_SEED, "preset": "quick"}
    from repro.core.resume import run_checkpointed

    baseline = run_checkpointed(factory, directory, meta=meta)
    recorded = CheckpointStore(directory).load().entries()
    interrupt_after(directory, keep=max(len(recorded) // 2, 1))
    hits_before = compile_cache_stats()["hits"]
    report = resume_checkpointed(factory, directory, meta=meta)
    assert not report.short_circuited
    # The replay loaded flask+jimmy again; with the cache warm that is
    # pure hits, no recompilation.
    assert compile_cache_stats()["hits"] > hits_before
    assert export_digest(report.kernel, meta=run_meta) == \
        export_digest(finished_kernels[name], meta=run_meta)
    assert export_digest(baseline.kernel, meta=run_meta) == \
        export_digest(finished_kernels[name], meta=run_meta)
