"""Property-based tests: the metrics registry's algebra.

The sweep engine leans on three invariants: histogram bucket counts
always sum to the observation count, counters never decrease, and
merging snapshots is exactly "observe the union of the events" — in
any order.  Hypothesis hammers those with arbitrary observation
streams and arbitrary ways of splitting them across registries.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)

finite = st.floats(min_value=-1e12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)

observations = st.lists(finite, min_size=0, max_size=200)

bounds = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=12, unique=True,
).map(sorted).map(tuple)

increments = st.lists(st.integers(min_value=0, max_value=10_000),
                      min_size=0, max_size=100)


@settings(max_examples=100, deadline=None)
@given(values=observations, bnds=bounds)
def test_histogram_bucket_counts_sum_to_observation_count(values, bnds):
    hist = Histogram("h", bounds=bnds)
    for value in values:
        hist.observe(value)
    assert sum(hist.bucket_counts()) == hist.count == len(values)
    # Every observation landed in exactly one bucket, and each value is
    # <= its bucket's bound (or fell through to the overflow bucket).
    below_or_at = [sum(1 for v in values if v <= bound) for bound in bnds]
    cumulative = 0
    for bucket, expected in zip(hist.bucket_counts(), below_or_at):
        cumulative += bucket
        assert cumulative == expected


@settings(max_examples=100, deadline=None)
@given(amounts=increments)
def test_counter_is_monotone_over_any_increment_stream(amounts):
    counter = Counter("c")
    previous = counter.value
    for amount in amounts:
        counter.inc(amount)
        assert counter.value >= previous
        previous = counter.value
    assert counter.value == sum(amounts)


def _observe_all(events):
    """One registry that saw every event; returns its snapshot."""
    registry = MetricsRegistry()
    for kind, name, value in events:
        if kind == "counter":
            registry.inc("c." + name, value)
        elif kind == "gauge":
            # Merge takes the max, so feed it max-like updates only.
            gauge = registry.gauge("g." + name)
            gauge.set(max(gauge.value, value))
        else:
            registry.observe("h." + name, value)
    return registry.snapshot()


metric_events = st.lists(
    st.tuples(st.sampled_from(["counter", "gauge", "histogram"]),
              st.sampled_from(["a", "b", "c"]),
              st.integers(min_value=0, max_value=10_000)),
    min_size=0, max_size=80,
)


@settings(max_examples=100, deadline=None)
@given(events=metric_events, split=st.integers(min_value=0, max_value=80))
def test_merging_two_snapshots_equals_observing_the_union(events, split):
    split = min(split, len(events))
    left, right = events[:split], events[split:]
    merged = merge_snapshots(_observe_all(left), _observe_all(right))
    union = _observe_all(events)
    # Gauges only coincide when both halves saw the name; keep the
    # exact-equality claim to the names the union and merge share with
    # identical visibility, which for counters/histograms is all names.
    for name, entry in union.items():
        if entry["type"] == "gauge" and name not in merged:
            continue
        if entry["type"] == "gauge":
            assert merged[name]["value"] <= entry["value"]
            continue
        assert merged[name] == entry
    non_gauge = {n for n, e in union.items() if e["type"] != "gauge"}
    assert non_gauge <= set(merged)


@settings(max_examples=100, deadline=None)
@given(events=metric_events,
       cut_a=st.integers(min_value=0, max_value=80),
       cut_b=st.integers(min_value=0, max_value=80))
def test_merge_is_order_independent_and_associative(events, cut_a, cut_b):
    cut_a, cut_b = sorted((min(cut_a, len(events)), min(cut_b, len(events))))
    parts = [events[:cut_a], events[cut_a:cut_b], events[cut_b:]]
    snapshots = [_observe_all(part) for part in parts]
    forward = merge_snapshots(*snapshots)
    backward = merge_snapshots(*reversed(snapshots))
    assert forward == backward
    nested = merge_snapshots(merge_snapshots(snapshots[0], snapshots[1]),
                             snapshots[2])
    assert nested == forward
    # Merging with an empty snapshot is the identity.
    assert merge_snapshots(forward, {}) == forward


@settings(max_examples=50, deadline=None)
@given(events=metric_events)
def test_snapshot_round_trips_and_never_aliases_registry_state(events):
    registry_snapshot = _observe_all(events)
    merged = merge_snapshots(registry_snapshot)
    assert merged == registry_snapshot
    # The merge result is a fresh structure: mutating it must not leak.
    for entry in merged.values():
        if entry["type"] == "histogram":
            entry["counts"][0] += 1
            entry["sum"] += 1
        else:
            entry["value"] += 1
    assert merge_snapshots(registry_snapshot) == registry_snapshot
