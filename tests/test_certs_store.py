"""Trust store: chain verification, revocation, untrusted store."""

import pytest

from repro.certs import CertificateAuthority, TrustStore
from repro.certs.certificate import (
    KEY_USAGE_CA,
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
)


@pytest.fixture(scope="module")
def pki():
    root = CertificateAuthority("Root")
    intermediate = CertificateAuthority("Intermediate")
    intermediate_cert = root.issue("Intermediate",
                                   intermediate.keypair.public,
                                   usages={KEY_USAGE_CA})
    leaf, leaf_key = intermediate.issue_with_new_key(
        "Vendor", {KEY_USAGE_CODE_SIGNING})
    return {"root": root, "intermediate": intermediate,
            "intermediate_cert": intermediate_cert,
            "leaf": leaf, "leaf_key": leaf_key}


@pytest.fixture
def store(pki):
    return TrustStore(trusted_roots=[pki["root"].root_certificate])


def test_direct_chain_verifies(pki):
    direct, _ = pki["root"].issue_with_new_key("Direct",
                                               {KEY_USAGE_CODE_SIGNING})
    store = TrustStore(trusted_roots=[pki["root"].root_certificate])
    assert store.verify_chain([direct])


def test_chain_through_intermediate(store, pki):
    result = store.verify_chain([pki["leaf"], pki["intermediate_cert"]])
    assert result, result.reason
    assert result.signer == "Vendor"


def test_empty_chain_fails(store):
    assert not store.verify_chain([])


def test_untrusted_issuer_fails(pki):
    store = TrustStore()  # no roots at all
    assert not store.verify_chain([pki["leaf"], pki["intermediate_cert"]])


def test_wrong_usage_fails(store, pki):
    result = store.verify_chain([pki["leaf"], pki["intermediate_cert"]],
                                usage=KEY_USAGE_LICENSE_VERIFICATION)
    assert not result
    assert "lacks" in result.reason


def test_expired_certificate_fails(store, pki):
    result = store.verify_chain([pki["leaf"], pki["intermediate_cert"]],
                                at_time=pki["leaf"].not_after + 1)
    assert not result


def test_broken_chain_order_fails(store, pki):
    other = CertificateAuthority("Unrelated")
    unrelated_cert = other.root_certificate
    result = store.verify_chain([pki["leaf"], unrelated_cert])
    assert not result


def test_intermediate_without_ca_usage_fails(store, pki):
    # A leaf pretending to be an issuer must be rejected.
    fake_parent, fake_key = pki["root"].issue_with_new_key(
        "NotACA", {KEY_USAGE_CODE_SIGNING})
    # Hand-issue a child signed by the non-CA.
    from repro.certs import Certificate

    child_key = pki["leaf_key"].public
    child = Certificate("Child", "NotACA", "x-1", child_key,
                        {KEY_USAGE_CODE_SIGNING}, 0, 10**9)
    child.signature = fake_key.sign(child.tbs_bytes())
    result = store.verify_chain([child, fake_parent])
    assert not result
    assert "not a CA" in result.reason


def test_revocation_by_serial(store, pki):
    store.revoke_serial(pki["leaf"].serial)
    result = store.verify_chain([pki["leaf"], pki["intermediate_cert"]])
    assert not result
    assert "revoked" in result.reason


def test_untrusted_store_blocks(store, pki):
    store.mark_untrusted(pki["leaf"])
    result = store.verify_chain([pki["leaf"], pki["intermediate_cert"]])
    assert not result
    assert "untrusted" in result.reason


def test_verification_result_repr_and_bool(store, pki):
    ok = store.verify_chain([pki["leaf"], pki["intermediate_cert"]])
    assert "OK" in repr(ok)
    assert bool(ok)
