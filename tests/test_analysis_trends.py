"""Trend matrix scoring (§V)."""

import pytest

from repro.analysis import TREND_NAMES, TrendMatrix, score_campaign
from repro.analysis.trends import CampaignArtifacts, literature_rows


def test_trend_names_cover_section_v():
    assert TREND_NAMES == ("sophistication", "targeting", "certified",
                           "modularity", "usb_spreading", "suicide")


def test_stuxnet_like_artifacts_score_high_on_sophistication():
    facts = CampaignArtifacts(
        "stuxnet", zero_days_used=4, stolen_certs=2, module_count=2,
        fingerprint_gated=True, infections=3, intended_targets=1,
        usb_vectors=1, network_vectors=1, has_suicide=True,
    )
    scores = facts.scores()
    assert scores["sophistication"] == 5
    assert scores["targeting"] >= 4
    assert scores["certified"] >= 3
    assert scores["suicide"] == 3  # capability present, never executed


def test_shamoon_like_artifacts_score_low_on_sophistication():
    facts = CampaignArtifacts(
        "shamoon", zero_days_used=0, signed_driver_abuse=1,
        module_count=3, infections=30000, network_vectors=1,
        has_suicide=False,
    )
    scores = facts.scores()
    assert scores["sophistication"] <= 2
    assert scores["suicide"] == 0
    assert scores["certified"] >= 1
    assert scores["usb_spreading"] == 0


def test_flame_like_artifacts_score_max_modularity():
    facts = CampaignArtifacts(
        "flame", zero_days_used=1, forged_certs=1, module_count=8,
        module_updates=4, infections=1000, usb_vectors=2,
        has_suicide=True, suicide_executed=True,
        infrastructure_domains=80,
    )
    scores = facts.scores()
    assert scores["modularity"] == 5
    assert scores["suicide"] == 5
    assert scores["usb_spreading"] >= 4
    assert scores["certified"] >= 3


def test_matrix_table_rendering():
    matrix = TrendMatrix()
    matrix.add(CampaignArtifacts("stuxnet", zero_days_used=4,
                                 has_suicide=True))
    for row in literature_rows():
        matrix.add(row)
    table = matrix.as_table()
    assert "stuxnet" in table
    assert "duqu" in table and "repo" in table  # reported source marker
    assert matrix.score("stuxnet", "sophistication") >= 4
    assert set(matrix.families()) == {"stuxnet", "duqu", "gauss"}


def test_score_campaign_from_live_instances(kernel, world, host_factory):
    from repro.malware.stuxnet import Stuxnet
    from repro.malware.shamoon import Shamoon, ShamoonConfig
    from repro.usb import UsbDrive

    stux = Stuxnet(kernel, world)
    victim = host_factory("XP", os_version="xp")
    victim.insert_usb(stux.weaponize_drive(UsbDrive("s")))

    from repro.netsim import Lan

    lan = Lan(kernel, "org")
    wiped = host_factory("W", file_and_print_sharing=True)
    lan.attach(wiped)
    sham = Shamoon(kernel, world, lan.domain_admin_credential,
                   ShamoonConfig())
    sham.infect(wiped, via="initial")
    sham.detonate(wiped)

    matrix = score_campaign(stuxnet=stux, shamoon=sham)
    assert matrix.score("stuxnet", "usb_spreading") >= 2
    assert matrix.score("stuxnet", "sophistication") >= 4
    assert matrix.score("shamoon", "sophistication") <= 2
    assert matrix.score("shamoon", "suicide") == 0
    assert matrix.score("stuxnet", "suicide") >= 3
    # Paper ordering: Stuxnet/Flame tower over Shamoon in sophistication.
    assert (matrix.score("stuxnet", "sophistication")
            > matrix.score("shamoon", "sophistication"))


def test_literature_rows_marked_reported():
    for row in literature_rows():
        assert row.source == "reported"
