"""Differential suite: indexed TraceLog queries vs the linear reference.

``TraceLog.query`` resolves from per-actor/per-action indexes and a
bisected time window; ``TraceLog.query_linear`` is the pre-index full
scan kept as the reference implementation.  Every test here asserts the
two return *identical* record lists — same objects, same order — across
the three seeded campaigns and across Hypothesis-generated logs and
filter combinations (exact, prefix-``*``, ``since``/``until``,
no-target records, non-monotonic clocks, bounded mode).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ensemble import CAMPAIGNS, QUICK_PARAMS
from repro.sim.trace import TraceLog


class _Clock:
    """Settable stand-in for SimClock; lets tests stamp arbitrary times."""

    def __init__(self):
        self.now = 0.0


def _assert_equivalent(trace, **filters):
    indexed = trace.query(**filters)
    linear = trace.query_linear(**filters)
    assert len(indexed) == len(linear), filters
    for got, want in zip(indexed, linear):
        assert got is want, filters
    assert trace.count(**filters) == len(linear)
    assert trace.first(**filters) is (linear[0] if linear else None)
    assert trace.last(**filters) is (linear[-1] if linear else None)


def _filter_battery(trace):
    """Filter combinations probing every code path of the index."""
    records = list(trace)
    actors = sorted({r.actor for r in records})
    actions = sorted({r.action for r in records})
    targets = sorted({r.target for r in records if r.target is not None})
    times = sorted(r.time for r in records)
    mid = times[len(times) // 2] if times else 0.0
    late = times[(3 * len(times)) // 4] if times else 0.0
    battery = [
        {},
        {"actor": actors[0]},
        {"actor": "no-such-actor"},
        {"actor": "*"},
        {"action": actions[0]},
        {"action": actions[-1]},
        {"action": "no-such-action"},
        {"action": "*"},
        {"actor": actors[0], "action": actions[0]},
        {"actor": actors[-1], "action": actions[-1]},
        {"since": mid},
        {"until": mid},
        {"since": mid, "until": late},
        {"since": late, "until": mid},  # empty window
        {"actor": actors[0], "since": mid, "until": late},
        {"action": actions[0], "since": mid},
        {"target": "*"},
        {"target": "no-such-target"},
    ]
    if targets:
        battery.extend([
            {"target": targets[0]},
            {"target": targets[0][:3] + "*"},
            {"actor": actors[0], "target": targets[0]},
            {"actor": "*", "action": "*", "target": "*"},
        ])
    # Prefix families: split every actor/action at plausible boundaries.
    for name in actors[:4] + actions[:6]:
        if name is None:
            continue
        for cut in (1, len(name) // 2, len(name)):
            battery.append({"actor": name[:cut] + "*"})
            battery.append({"action": name[:cut] + "*"})
    return battery


#: One fixed seed — distinct from the golden seed so this suite and the
#: conformance suite pin different trajectories.
CAMPAIGN_SEED = 20260806


@pytest.fixture(scope="module", params=sorted(CAMPAIGNS))
def campaign_trace(request):
    name = request.param
    campaign = CAMPAIGNS[name](seed=CAMPAIGN_SEED,
                               **dict(QUICK_PARAMS[name]))
    campaign.run()
    return campaign.world.kernel.trace


def test_campaign_queries_match_linear_reference(campaign_trace):
    assert len(campaign_trace) > 0
    for filters in _filter_battery(campaign_trace):
        _assert_equivalent(campaign_trace, **filters)


def test_campaign_timeline_matches_linear(campaign_trace):
    actor = next(iter(campaign_trace)).actor
    want = [(r.time, r.actor, r.action, r.target)
            for r in campaign_trace.query_linear(actor=actor)]
    assert campaign_trace.timeline(actor=actor) == want


def test_campaign_actions_match_scan(campaign_trace):
    assert campaign_trace.actions() == {r.action for r in campaign_trace}


# -- Hypothesis: arbitrary logs, arbitrary filters -----------------------------

_names = st.sampled_from(
    ["a", "b", "ab", "abc", "flame.upload", "flame.suicide", "stuxnet-cnc",
     "stuxnet-plc", "host-1", "host-2", ""])
_targets = st.one_of(st.none(), _names)
_patterns = st.one_of(
    st.none(),
    _names,
    _names.map(lambda n: n + "*"),
    st.sampled_from(["*", "fl*", "flame.*", "stuxnet*", "host-*", "zz*"]))
_bounds = st.one_of(st.none(),
                    st.floats(min_value=-10.0, max_value=110.0,
                              allow_nan=False))


@st.composite
def _trace_logs(draw):
    clock = _Clock()
    trace = TraceLog(clock)
    entries = draw(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False),
                  _names, _names, _targets),
        max_size=60))
    monotonic = draw(st.booleans())
    if monotonic:
        entries.sort(key=lambda entry: entry[0])
    for when, actor, action, target in entries:
        clock.now = when
        trace.record(actor, action, target=target)
    return trace


@given(trace=_trace_logs(), actor=_patterns, action=_patterns,
       target=_patterns, since=_bounds, until=_bounds)
@settings(max_examples=200, deadline=None)
def test_random_logs_match_linear_reference(trace, actor, action, target,
                                            since, until):
    _assert_equivalent(trace, actor=actor, action=action, target=target,
                       since=since, until=until)


@given(trace=_trace_logs(), actor=_patterns, action=_patterns,
       limit=st.integers(min_value=1, max_value=30))
@settings(max_examples=100, deadline=None)
def test_bounded_logs_stay_equivalent(trace, actor, action, limit):
    trace.bound(limit)
    assert len(trace) <= limit
    assert trace.evicted_records + len(trace) == trace.total_records
    _assert_equivalent(trace, actor=actor, action=action)
    _assert_equivalent(trace, since=25.0, until=75.0)
