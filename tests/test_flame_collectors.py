"""FLASK/JIMMY/MICROBE collectors and adventcfg against real hosts."""

import json

import pytest

from repro.malware.flame import collectors
from repro.malware.flame.adventcfg import AdventCfg
from repro.malware.flame.modules import FlameModuleManager
from repro.malware.flame.scripts import FLASK_SOURCE, JIMMY_SOURCE


@pytest.fixture
def modules():
    manager = FlameModuleManager()
    manager.load("flask", FLASK_SOURCE)
    manager.load("jimmy", JIMMY_SOURCE)
    return manager


@pytest.fixture
def victim(host_factory):
    host = host_factory("VICTIM", has_microphone=True)
    host.vfs.write("c:\\users\\u\\documents\\secret-design.docx", b"D" * 500)
    host.vfs.write("c:\\users\\u\\documents\\notes.txt", b"N" * 100)
    host.vfs.write("c:\\users\\u\\pictures\\cat.jpg", b"J" * 200)
    host.vfs.write("c:\\users\\u\\documents\\drawing.dwg", b"W" * 300)
    return host


def test_flask_entry_is_json_sysinfo(modules, victim):
    entry = collectors.run_flask(modules, victim)
    payload = json.loads(entry.decode())
    assert payload["kind"] == "sysinfo"
    assert payload["report"]["computer"] == "VICTIM"


def test_jimmy_metadata_selects_documents_only(modules, victim):
    entry, selected = collectors.run_jimmy_metadata(modules, victim)
    paths = [s["path"] for s in selected]
    assert any("secret-design.docx" in p for p in paths)
    assert any("drawing.dwg" in p for p in paths)
    assert not any("cat.jpg" in p for p in paths)
    payload = json.loads(entry.decode())
    assert payload["kind"] == "metadata"


def test_jimmy_content_pull_pads_to_real_size(victim):
    paths = ["c:\\users\\u\\documents\\secret-design.docx",
             "c:\\users\\u\\documents\\missing.docx"]
    entry, stolen = collectors.run_jimmy_content(victim, paths)
    assert len(stolen) == 1  # the missing one is skipped
    assert stolen[0]["content_size"] == 500
    assert len(entry) >= 500


def test_microbe_requires_microphone(modules, host_factory, victim):
    assert collectors.run_microbe(victim) is not None
    deaf = host_factory("DEAF", has_microphone=False)
    assert collectors.run_microbe(deaf) is None


def test_microbe_entry_scales_with_duration(victim):
    short = collectors.run_microbe(victim, duration_seconds=10)
    long = collectors.run_microbe(victim, duration_seconds=100)
    assert len(long) > len(short)


def test_inventory_falls_back_to_root(host_factory):
    bare = host_factory("BARE")
    records = collectors.inventory_files(bare, root="c:\\users")
    # Falls back to scanning c: when c:\users has no directory entry.
    assert isinstance(records, list)


def test_adventcfg_screenshots_on_av_mention(victim):
    advent = AdventCfg(victim)
    victim.event_log.warning("antivirus",
                             "threat detected in mssecmgr.ocx")
    victim.event_log.info("other", "routine message")
    shots = advent.drain_screenshots()
    assert len(shots) == 1
    payload = json.loads(shots[0].split(b"\x00", 1)[0].decode())
    assert payload["kind"] == "screenshot"
    assert "mssecmgr" in payload["trigger"]
    assert advent.drain_screenshots() == []


def test_adventcfg_risk_governor(victim):
    advent = AdventCfg(victim)
    assert advent.safe_to_act()
    for _ in range(3):
        victim.event_log.warning("antivirus", "flame component flagged")
    assert not advent.safe_to_act()
    assert advent.suppressed_actions == 1
    advent.absorb_update()
    advent.absorb_update()
    assert advent.safe_to_act()


def test_adventcfg_detach_stops_watching(victim):
    advent = AdventCfg(victim)
    advent.detach()
    victim.event_log.warning("antivirus", "flame detected")
    assert advent.pending_screenshots == []
