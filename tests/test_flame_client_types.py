"""The four client families and the scoped suicide (§III.B).

"Flame clients (CLIENT_TYPE_FL) constitute only one out of four types of
infected clients (CLIENT_TYPE_SP, CLIENT_TYPE_SPE, and CLIENT_TYPE_IP
being the others). This indicates that the attackers behind Flame can
deploy new variants anytime."
"""

import pytest

from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from repro.netsim import Internet, Lan


@pytest.fixture
def variant_world(kernel, world, host_factory):
    internet = Internet(kernel)
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, internet, ["var-cnc.com"])
    lan = Lan(kernel, "fleet", internet=internet)

    def deploy(client_type, hostname):
        host = host_factory(hostname)
        lan.attach(host)
        instance = Flame(
            kernel, world, default_domains=["var-cnc.com"],
            coordinator_public_key=center.coordinator_public_key,
            config=FlameConfig(enable_wu_mitm=False,
                               client_type=client_type),
        )
        instance.infect(host, via="initial")
        return instance, host

    fl, fl_host = deploy("CLIENT_TYPE_FL", "FL-1")
    sp, sp_host = deploy("CLIENT_TYPE_SP", "SP-1")
    return {"center": center, "server": server, "lan": lan,
            "fl": fl, "fl_host": fl_host, "sp": sp, "sp_host": sp_host}


def test_server_sees_both_client_types(kernel, variant_world):
    kernel.run_for(86400.0)
    histogram = variant_world["server"].client_type_histogram()
    assert histogram == {"CLIENT_TYPE_FL": 1, "CLIENT_TYPE_SP": 1}


def test_scoped_suicide_kills_only_fl(kernel, variant_world):
    kernel.run_for(86400.0)
    variant_world["center"].broadcast_suicide(client_type="CLIENT_TYPE_FL")
    kernel.run_for(86400.0)
    assert not variant_world["fl_host"].is_infected_by("flame")
    assert variant_world["sp_host"].is_infected_by("flame")
    # The surviving variant keeps working (§III.B's warning).
    assert variant_world["sp"].active_infections() == ["SP-1"]


def test_unscoped_suicide_kills_everyone(kernel, variant_world):
    kernel.run_for(86400.0)
    variant_world["center"].broadcast_suicide()
    kernel.run_for(86400.0)
    assert not variant_world["fl_host"].is_infected_by("flame")
    assert not variant_world["sp_host"].is_infected_by("flame")


def test_scoped_module_update_applies_to_one_family(kernel, variant_world):
    from repro.malware.flame.scripts import JIMMY_V2_SOURCE

    variant_world["center"].push_command(
        "jimmy", JIMMY_V2_SOURCE.encode("utf-8"), kind="module",
        client_type="CLIENT_TYPE_SP")
    kernel.run_for(86400.0)
    assert variant_world["sp"].modules.versions()["jimmy"] == 2
    assert variant_world["fl"].modules.versions()["jimmy"] == 1
