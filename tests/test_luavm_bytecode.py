"""Bytecode pipeline: serialization, validation, folding, and the cache."""

import pytest

from repro.luavm import BytecodeVM, LuaBytecodeError, LuaVM
from repro.luavm.code import (
    CALL,
    CONST,
    GETL,
    JMP,
    OP_NAMES,
    RET,
    RETNIL,
    Chunk,
    Proto,
)
from repro.luavm.compiler import (
    clear_compile_cache,
    compile_cache_stats,
    compile_cached,
    compile_source,
    source_digest,
)
from repro.malware.flame.scripts import (
    FLASK_SOURCE,
    JIMMY_SOURCE,
    JIMMY_V2_SOURCE,
    warm_compile_cache,
)

SAMPLE = """
local function weight(x)
  return x * 3 + 1
end
total = 0
for i = 1, 5 do
  total = total + weight(i)
end
return total
"""


# --- round trip -------------------------------------------------------------

def test_round_trip_is_bit_stable():
    chunk = compile_source(SAMPLE)
    data = chunk.to_bytes()
    revived = Chunk.from_bytes(data)
    assert revived.to_bytes() == data
    assert revived.digest() == chunk.digest()
    assert revived.source_digest == source_digest(SAMPLE)


def test_round_trip_preserves_execution():
    chunk = compile_source(SAMPLE)
    revived = Chunk.from_bytes(chunk.to_bytes())
    assert BytecodeVM().run_chunk(revived) == 50
    assert BytecodeVM().run(SAMPLE) == 50


def test_serialization_is_deterministic_across_compilations():
    assert compile_source(SAMPLE).to_bytes() == \
        compile_source(SAMPLE).to_bytes()


def test_flame_scripts_compile_and_round_trip():
    for source in (FLASK_SOURCE, JIMMY_SOURCE, JIMMY_V2_SOURCE):
        chunk = compile_source(source)
        assert Chunk.from_bytes(chunk.to_bytes()).to_bytes() == \
            chunk.to_bytes()


def test_constant_pool_round_trips_every_type():
    chunk = Chunk(
        (None, True, False, 7, -3, 2 ** 80, 1.5, -0.25, "", "text", "é"),
        (Proto("main", 0, 0, [(RETNIL, 0, 0)]),),
        "d" * 8,
    )
    revived = Chunk.from_bytes(chunk.to_bytes())
    assert revived.consts == chunk.consts
    assert [type(c) for c in revived.consts] == \
        [type(c) for c in chunk.consts]


# --- malformed chunks -------------------------------------------------------

def test_bad_magic_raises():
    data = compile_source(SAMPLE).to_bytes()
    with pytest.raises(LuaBytecodeError, match="magic"):
        Chunk.from_bytes(b"XXXX" + data[4:])


def test_unsupported_version_raises():
    data = bytearray(compile_source(SAMPLE).to_bytes())
    data[4:6] = b"\x00\x63"
    with pytest.raises(LuaBytecodeError, match="version"):
        Chunk.from_bytes(bytes(data))


@pytest.mark.parametrize("cut", [5, 10, 40, -20, -1])
def test_truncated_stream_raises(cut):
    data = compile_source(SAMPLE).to_bytes()
    with pytest.raises(LuaBytecodeError):
        Chunk.from_bytes(data[:cut])


def test_trailing_garbage_raises():
    data = compile_source(SAMPLE).to_bytes()
    with pytest.raises(LuaBytecodeError, match="trailing"):
        Chunk.from_bytes(data + b"\x00")


def test_non_bytes_input_raises():
    with pytest.raises(LuaBytecodeError):
        Chunk.from_bytes("not bytes")


def test_every_single_byte_corruption_is_typed():
    """Flipping any one byte must yield LuaBytecodeError or an
    equivalent chunk — never an uncaught struct/index/decode error."""
    data = compile_source("return 1 + 2").to_bytes()
    for position in range(len(data)):
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        try:
            Chunk.from_bytes(bytes(corrupted))
        except LuaBytecodeError:
            pass


# --- validation -------------------------------------------------------------

def _chunk_with_code(code, consts=(), nslots=0):
    return Chunk(consts, (Proto("main", 0, nslots, code),))


def test_validate_rejects_missing_return():
    with pytest.raises(LuaBytecodeError, match="return"):
        _chunk_with_code([(CONST, 0, 0)], consts=(1,)).validate()


def test_validate_rejects_empty_proto():
    with pytest.raises(LuaBytecodeError, match="return"):
        _chunk_with_code([]).validate()


def test_validate_rejects_unknown_opcode():
    with pytest.raises(LuaBytecodeError, match="opcode"):
        _chunk_with_code([(len(OP_NAMES), 0, 0), (RETNIL, 0, 0)]).validate()


def test_validate_rejects_out_of_range_jump():
    with pytest.raises(LuaBytecodeError, match="jump"):
        _chunk_with_code([(JMP, 99, 0), (RETNIL, 0, 0)]).validate()


def test_validate_rejects_out_of_range_constant():
    with pytest.raises(LuaBytecodeError, match="constant"):
        _chunk_with_code([(CONST, 3, 0), (RET, 0, 0)],
                         consts=(1,)).validate()


def test_validate_rejects_bad_local_slot():
    with pytest.raises(LuaBytecodeError, match="local"):
        _chunk_with_code([(GETL, 0, 0), (RET, 0, 0)], nslots=1).validate()


def test_validate_rejects_params_exceeding_slots():
    chunk = Chunk((), (Proto("f", 3, 1, [(RETNIL, 0, 0)]),))
    with pytest.raises(LuaBytecodeError, match="params"):
        chunk.validate()


def test_compiler_output_always_validates():
    for source in (SAMPLE, FLASK_SOURCE, JIMMY_SOURCE, JIMMY_V2_SOURCE):
        compile_source(source).validate()


# --- constant folding -------------------------------------------------------

def test_folding_collapses_constant_expressions():
    folded = compile_source("return 2 + 3 * 4")
    assert 14 in folded.consts
    # CONST + RET (plus the implicit chunk epilogue): the arithmetic
    # happened at compile time.
    assert [op for op, _, _ in folded.protos[0].code] == \
        [CONST, RET, RETNIL]


def test_folding_handles_concat_and_comparison():
    chunk = compile_source("return 'a' .. 'b' .. 1")
    assert "ab1" in chunk.consts
    chunk = compile_source("if 1 < 2 then return 'yes' end return 'no'")
    assert BytecodeVM().run_chunk(chunk) == "yes"
    # The dead arm's guard folded away entirely.
    assert all(op != JMP or True for op, _, _ in chunk.protos[0].code)


def test_folding_never_hoists_runtime_errors():
    # 1/0 must still raise at *run* time, identically to the tree.
    from repro.luavm import LuaRuntimeError

    for source in ("return 1 / 0", "return 1 % 0", "return 1 .. nil",
                   "return 1 < 'x'", "return - 'x'"):
        chunk = compile_source(source)  # compiles fine
        with pytest.raises(LuaRuntimeError):
            BytecodeVM().run_chunk(chunk)
        with pytest.raises(LuaRuntimeError):
            LuaVM().run(source)


def test_folded_results_match_unfolded_tree_execution():
    cases = [
        "return (2 + 3) * (10 - 4)",
        "return 7 / 2",
        "return 10 % 3",
        "return 'n=' .. 4 * 5",
        "return not (1 == 2)",
        "return - (3 * 3)",
        "return #'hello'",
        "return 1 < 2 and 'lo' or 'hi'",
    ]
    for source in cases:
        assert BytecodeVM().run(source) == LuaVM().run(source), source


def test_const_false_while_is_elided():
    chunk = compile_source("while 1 == 2 do x = 1 end return 9")
    ops = [op for op, _, _ in chunk.protos[0].code]
    assert CALL not in ops and JMP not in ops
    assert BytecodeVM().run_chunk(chunk) == 9


# --- compile cache ----------------------------------------------------------

def test_compile_cache_hits_and_misses():
    clear_compile_cache()
    first = compile_cached(SAMPLE)
    second = compile_cached(SAMPLE)
    assert first is second
    stats = compile_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["entries"] == 1
    clear_compile_cache()
    assert compile_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


def test_vms_share_cached_chunks():
    clear_compile_cache()
    vms = [BytecodeVM() for _ in range(4)]
    for vm in vms:
        assert vm.run(SAMPLE) == 50
    stats = compile_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 3


def test_warm_compile_cache_precompiles_flame_scripts():
    clear_compile_cache()
    assert warm_compile_cache() == 3
    stats = compile_cache_stats()
    assert stats["entries"] == 3
    assert stats["misses"] == 3
    warm_compile_cache()
    assert compile_cache_stats()["hits"] == 3


def test_disassemble_names_every_instruction():
    listing = compile_source(SAMPLE).disassemble()
    assert any("CALL" in line for line in listing)
    assert listing[0].startswith("proto 0 main")
