"""Flame's Lua module system: loading, calling, hot-swap."""

import pytest

from repro.malware.flame.modules import FlameModuleManager, LuaModule
from repro.malware.flame.scripts import (
    FLASK_SOURCE,
    JIMMY_SOURCE,
    JIMMY_V2_SOURCE,
)


@pytest.fixture
def manager():
    manager = FlameModuleManager()
    manager.load("flask", FLASK_SOURCE)
    manager.load("jimmy", JIMMY_SOURCE)
    return manager


def test_modules_load_and_export(manager):
    assert manager.names() == ["flask", "jimmy"]
    assert manager.get("jimmy").exports("scan")
    assert manager.get("flask").exports("collect")
    assert manager.versions() == {"flask": 1, "jimmy": 1}


def test_jimmy_v1_selects_document_types(manager):
    files = [
        {"path": "c:\\u\\documents\\a.docx", "ext": "docx", "size": 1000},
        {"path": "c:\\u\\documents\\b.exe", "ext": "exe", "size": 1000},
        {"path": "c:\\u\\documents\\c.dwg", "ext": "dwg", "size": 2000},
        {"path": "c:\\u\\huge.pdf", "ext": "pdf", "size": 99_000_000},
    ]
    selected = manager.call("jimmy", "scan", files)
    paths = [s["path"] for s in selected]
    assert "c:\\u\\documents\\a.docx" in paths
    assert "c:\\u\\documents\\c.dwg" in paths
    assert "c:\\u\\documents\\b.exe" not in paths   # wrong type
    assert "c:\\u\\huge.pdf" not in paths           # over the size cap
    assert all("summary" in s for s in selected)


def test_flask_shapes_sysinfo(manager):
    report = manager.call("flask", "collect", {
        "hostname": "V-1", "os": "7", "volumes": ["c:"],
        "tcp_connections": [{"peer": "lan", "port": 445}],
        "cookies": ["mail.example"], "software": ["ie"],
    })
    assert report["computer"] == "V-1"
    assert report["volumes"] == 1
    assert report["open_connections"] == 1


def test_hot_swap_bumps_version_and_changes_behaviour(manager):
    files = [{"path": "c:\\u\\documents\\secret-x.docx", "ext": "docx",
              "size": 10}]
    before = manager.call("jimmy", "scan", files)
    assert "score" not in before[0]
    module = manager.hot_swap("jimmy", JIMMY_V2_SOURCE, at_time=42.0)
    assert module.version == 2
    after = manager.call("jimmy", "scan", files)
    assert after[0]["score"] == 1  # "secret" keyword now scored
    assert manager.update_log == [("jimmy", 1, 2, 42.0)]


def test_hot_swap_rejects_broken_script(manager):
    assert manager.hot_swap("jimmy", "this is not lua ][") is None
    # Old module still loaded and functional.
    assert manager.versions()["jimmy"] == 1
    assert manager.get("jimmy").exports("scan")


def test_hot_swap_can_add_new_module(manager):
    module = manager.hot_swap("microbe2", "function go() return 7 end")
    assert module.version == 1
    assert manager.call("microbe2", "go") == 7


def test_call_unknown_module_raises(manager):
    with pytest.raises(KeyError):
        manager.call("ghost", "run")


def test_invocation_counter():
    module = LuaModule("m", "function f() return 1 end")
    module.call("f")
    module.call("f")
    assert module.invocations == 2
