"""Property-based tests: filesystem and registry invariants."""

from hypothesis import given, settings, strategies as st

from repro.winsim import Registry, VirtualFileSystem
from repro.winsim.vfs import normalize_path

_name = st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8)
_path = st.builds(
    lambda parts, name, ext: "c:\\" + "\\".join(parts + [name + "." + ext]),
    st.lists(_name, max_size=3), _name, st.sampled_from(["txt", "docx", "exe"]),
)


@settings(max_examples=60, deadline=None)
@given(entries=st.dictionaries(_path, st.binary(max_size=128), max_size=12))
def test_write_read_consistency(entries):
    vfs = VirtualFileSystem()
    for path, data in entries.items():
        vfs.write(path, data)
    for path, data in entries.items():
        assert vfs.read(path) == data
        assert vfs.exists(path.upper())
    # Walk finds exactly the user files (case-folded paths dedupe).
    canonical = {normalize_path(p) for p in entries}
    user_files = {r.path for r in vfs.walk("c:")
                  if r.origin is None and not r.path.startswith("c:\\windows")}
    assert user_files == {p for p in canonical
                          if not p.startswith("c:\\windows")}


@settings(max_examples=40, deadline=None)
@given(path=_path, original=st.binary(max_size=200),
       patch=st.binary(max_size=64),
       offset=st.integers(min_value=0, max_value=128))
def test_overwrite_data_length_invariant(path, original, patch, offset):
    vfs = VirtualFileSystem()
    vfs.write(path, original)
    vfs.overwrite_data(path, patch, offset=offset)
    data = vfs.read(path)
    assert len(data) == max(len(original), offset + len(patch))
    assert data[offset:offset + len(patch)] == patch
    if offset <= len(original):
        assert data[:offset] == original[:offset]


@settings(max_examples=40, deadline=None)
@given(paths=st.lists(_path, min_size=1, max_size=8, unique=True))
def test_delete_removes_exactly_one(paths):
    vfs = VirtualFileSystem()
    for path in paths:
        vfs.write(path, b"x")
    canonical = {normalize_path(p) for p in paths}
    victim = sorted(canonical)[0]
    before = vfs.file_count()
    vfs.delete(victim)
    assert vfs.file_count() == before - 1
    assert not vfs.exists(victim)
    for path in canonical - {victim}:
        assert vfs.exists(path)


@settings(max_examples=40, deadline=None)
@given(
    key_parts=st.lists(_name, min_size=1, max_size=3),
    values=st.dictionaries(_name, st.integers(), min_size=1, max_size=6),
)
def test_registry_snapshot_isolation(key_parts, values):
    registry = Registry()
    key = "hklm\\" + "\\".join(key_parts)
    for name, value in values.items():
        registry.set_value(key, name, value)
    snapshot = registry.snapshot()
    for name in values:
        registry.set_value(key, name, "overwritten")
    for name, value in values.items():
        assert snapshot[key.lower()][name.lower()] == value
