"""Interrupted-sweep equivalence: resume must be byte-identical.

The acceptance bar for the checkpoint layer: a seeded sweep interrupted
mid-run and resumed from its manifest yields the *exact* result of an
uninterrupted run — trace digests, aggregates, and merged metrics —
for all three paper campaigns, whichever of the serial or parallel
paths runs the remainder, and even when the interruption is a SIGKILL
of the live process rather than a polite exception.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import CampaignSpec, SweepConfig, run_sweep
from repro.core.ensemble import CAMPAIGNS, run_replica
from repro.core.resume import SweepCheckpoint
from repro.sim.errors import CheckpointDigestError, CheckpointError

BASE_SEED = 9


def _quick(campaign):
    return CampaignSpec.quick(campaign)


def _config(replicas=4, mode="serial", **kwargs):
    return SweepConfig(replicas=replicas, base_seed=BASE_SEED, mode=mode,
                       **kwargs)


def _canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def _replica_files(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.startswith("replica-"))


def _assert_byte_identical(resumed, baseline):
    assert resumed.digests() == baseline.digests()
    assert [r.seed for r in resumed.replicas] \
        == [r.seed for r in baseline.replicas]
    assert _canonical(resumed.aggregate()) \
        == _canonical(baseline.aggregate())
    assert _canonical(resumed.aggregate_metrics()) \
        == _canonical(baseline.aggregate_metrics())
    assert _canonical(resumed.merged_metrics()) \
        == _canonical(baseline.merged_metrics())
    assert _canonical([r.measurements for r in resumed.replicas]) \
        == _canonical([r.measurements for r in baseline.replicas])


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_interrupted_sweep_resumes_byte_identically(name, tmp_path):
    """Delete a subset of recorded replicas (a crash mid-sweep leaves
    exactly this state) and resume: everything derived from the merged
    ensemble must match the uninterrupted run byte for byte."""
    spec = _quick(name)
    baseline = run_sweep(spec, _config())
    directory = str(tmp_path / name)
    recorded = run_sweep(spec, _config(), checkpoint_dir=directory)
    _assert_byte_identical(recorded, baseline)
    assert len(_replica_files(directory)) == 4
    for index in (1, 3):
        os.remove(os.path.join(directory, "replica-%04d.json" % index))
    resumed = run_sweep(spec, _config(), checkpoint_dir=directory,
                        resume=True)
    _assert_byte_identical(resumed, baseline)
    # The resumed run re-recorded the missing replicas.
    assert len(_replica_files(directory)) == 4


def test_parallel_resume_matches_serial_recording(tmp_path):
    """Pool shape is free to differ between the recording and resuming
    runs — sharding never reaches per-replica state."""
    spec = _quick("shamoon")
    directory = str(tmp_path / "mixed")
    baseline = run_sweep(spec, _config(replicas=6))
    run_sweep(spec, _config(replicas=6), checkpoint_dir=directory)
    for index in (0, 2, 5):
        os.remove(os.path.join(directory, "replica-%04d.json" % index))
    resumed = run_sweep(
        spec, _config(replicas=6, mode="parallel", workers=2,
                      chunk_size=1),
        checkpoint_dir=directory, resume=True)
    _assert_byte_identical(resumed, baseline)


def test_resume_with_nothing_pending_short_circuits(tmp_path):
    spec = _quick("shamoon")
    directory = str(tmp_path / "full")
    baseline = run_sweep(spec, _config(), checkpoint_dir=directory)
    resumed = run_sweep(spec, _config(mode="parallel", workers=2),
                        checkpoint_dir=directory, resume=True)
    _assert_byte_identical(resumed, baseline)


# -- manifest validation -------------------------------------------------------

def test_resume_requires_checkpoint_dir():
    with pytest.raises(ValueError, match="checkpoint_dir"):
        run_sweep(_quick("shamoon"), _config(), resume=True)


def test_resume_rejects_missing_manifest(tmp_path):
    with pytest.raises(CheckpointError):
        run_sweep(_quick("shamoon"), _config(),
                  checkpoint_dir=str(tmp_path / "nothing"), resume=True)


@pytest.mark.parametrize("mutate, fragment", [
    (lambda: {"spec": _quick("flame")}, "spec"),
    (lambda: {"config": SweepConfig(replicas=4, base_seed=BASE_SEED + 1,
                                    mode="serial")}, "base_seed"),
    (lambda: {"config": SweepConfig(replicas=7, base_seed=BASE_SEED,
                                    mode="serial")}, "replicas"),
])
def test_resume_rejects_mismatched_run(tmp_path, mutate, fragment):
    """A manifest recorded for one (spec, seed, size) must refuse to
    splice into any other — silently mixing ensembles would corrupt
    every aggregate downstream."""
    directory = str(tmp_path / "guard")
    run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory)
    override = mutate()
    spec = override.get("spec", _quick("shamoon"))
    config = override.get("config", _config())
    with pytest.raises(CheckpointError, match=fragment):
        run_sweep(spec, config, checkpoint_dir=directory, resume=True)


def test_resume_rejects_corrupted_replica_file(tmp_path):
    directory = str(tmp_path / "corrupt")
    run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory)
    victim = os.path.join(directory, "replica-0001.json")
    envelope = json.load(open(victim, encoding="utf-8"))
    envelope["state"]["replica"]["trace_records"] += 1
    with open(victim, "w", encoding="utf-8") as stream:
        json.dump(envelope, stream)
    with pytest.raises(CheckpointDigestError):
        run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory,
                  resume=True)


def test_resume_rejects_truncated_replica_file(tmp_path):
    directory = str(tmp_path / "trunc")
    run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory)
    victim = os.path.join(directory, "replica-0002.json")
    data = open(victim, encoding="utf-8").read()
    with open(victim, "w", encoding="utf-8") as stream:
        stream.write(data[:80])
    with pytest.raises(CheckpointError, match="cannot read"):
        run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory,
                  resume=True)


def test_resume_rejects_misfiled_replica(tmp_path):
    """A replica file whose name disagrees with the index it records is
    a manifest inconsistency, not something to guess about."""
    directory = str(tmp_path / "misfiled")
    run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory)
    os.replace(os.path.join(directory, "replica-0001.json"),
               os.path.join(directory, "replica-0003.json"))
    os.remove(os.path.join(directory, "replica-0000.json"))
    with pytest.raises(CheckpointError, match="records index"):
        run_sweep(_quick("shamoon"), _config(), checkpoint_dir=directory,
                  resume=True)


def test_sweep_manifest_round_trip(tmp_path):
    directory = str(tmp_path / "manifest")
    spec = _quick("flame")
    config = _config(replicas=3)
    manifest = SweepCheckpoint.create(directory, spec, config)
    replica = run_replica(spec, 1, BASE_SEED)
    manifest.record(replica)
    loaded = SweepCheckpoint.load(directory)
    loaded.validate_against(spec, config)
    completed = loaded.completed()
    assert list(completed) == [1]
    assert completed[1].trace_digest == replica.trace_digest
    assert completed[1].measurements == replica.measurements
    assert completed[1].metrics == replica.metrics


# -- memoised-aggregate invalidation (satellite) -------------------------------

def test_merge_replicas_invalidates_memoised_aggregates():
    """Regression: aggregates memoised before a manifest merge must be
    recomputed over the merged ensemble, not served stale."""
    spec = _quick("shamoon")
    result = run_sweep(spec, _config(replicas=2))
    before = result.aggregate()
    assert before is result.aggregate()  # memoised: same object back
    key = next(iter(before))
    assert before[key]["n"] == 2
    before_metrics = result.aggregate_metrics()
    before_merged = result.merged_metrics()

    more = [run_replica(spec, index, BASE_SEED) for index in (2, 3)]
    result.merge_replicas(more)
    after = result.aggregate()
    assert after is not before
    assert after[key]["n"] == 4
    assert result.aggregate_metrics() is not before_metrics
    assert result.aggregate_metrics()[
        "sim.events_dispatched"]["n"] == 4
    assert result.merged_metrics() is not before_merged
    assert [replica.index for replica in result.replicas] == [0, 1, 2, 3]

    reference = run_sweep(spec, _config(replicas=4))
    _assert_byte_identical(result, reference)


def test_merge_replicas_rejects_duplicate_index():
    spec = _quick("shamoon")
    result = run_sweep(spec, _config(replicas=2))
    with pytest.raises(ValueError, match="index 1 twice"):
        result.merge_replicas([run_replica(spec, 1, BASE_SEED)])


# -- crash injection -----------------------------------------------------------

def _repo_src():
    return os.path.abspath(os.path.join(os.path.dirname(__file__),
                                        os.pardir, "src"))


def test_sigkilled_sweep_resumes_byte_identically(tmp_path):
    """SIGKILL a live checkpointed sweep process mid-run, then resume
    from whatever landed on disk.  Atomic replica writes guarantee the
    directory is never half-written, so the resumed result must match
    the uninterrupted baseline exactly — however far the victim got."""
    directory = str(tmp_path / "crash")
    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_src() + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", "--campaign", "shamoon",
         "--replicas", "10", "--serial", "--seed", str(BASE_SEED),
         "--checkpoint-dir", directory],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break  # finished before we struck; resume still works
            if (os.path.isdir(directory)
                    and len(_replica_files(directory)) >= 2):
                process.send_signal(signal.SIGKILL)
                break
            time.sleep(0.02)
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    survivors = _replica_files(directory)
    assert survivors, "no replicas recorded before the kill"
    # Every surviving file validates — SIGKILL never truncates one.
    manifest = SweepCheckpoint.load(directory)
    completed = manifest.completed()
    assert sorted(completed) == [
        int(name[len("replica-"):-len(".json")]) for name in survivors]

    spec = _quick("shamoon")
    config = _config(replicas=10)
    baseline = run_sweep(spec, config)
    resumed = run_sweep(spec, config, checkpoint_dir=directory,
                        resume=True)
    _assert_byte_identical(resumed, baseline)
