"""RetryPolicy/RetryTask: bounded attempts, virtual-time backoff."""

import pytest

from repro.sim import Kernel
from repro.sim.retry import RetryPolicy


def test_first_attempt_runs_synchronously(kernel):
    calls = []
    task = RetryPolicy(max_attempts=3).execute(
        kernel, lambda: calls.append("x") or "done", label="t")
    assert task.succeeded and task.result == "done"
    assert task.attempts == 1
    assert calls == ["x"]
    assert kernel.pending_events == 0  # nothing left scheduled


def test_backoff_consumes_virtual_time(kernel):
    policy = RetryPolicy(max_attempts=3, base_delay=100.0, multiplier=2.0,
                         jitter=0.0)
    seen = []

    def attempt():
        seen.append(kernel.now)
        return "ok" if len(seen) == 3 else None

    task = policy.execute(kernel, attempt, label="t")
    assert not task.finished  # first attempt failed; backoff pending
    kernel.run()
    assert task.succeeded and task.attempts == 3
    # Attempts at t=0, t=100, t=100+200 exactly (jitter disabled).
    assert seen == [0.0, 100.0, 300.0]


def test_exhaustion_calls_give_up(kernel):
    policy = RetryPolicy(max_attempts=4, base_delay=10.0, jitter=0.0)
    outcomes = []
    task = policy.execute(kernel, lambda: None, label="t",
                          on_give_up=lambda: outcomes.append("lost"))
    kernel.run()
    assert task.finished and not task.succeeded
    assert task.attempts == 4
    assert outcomes == ["lost"]


def test_exceptions_count_as_failed_attempts(kernel):
    policy = RetryPolicy(max_attempts=2, base_delay=5.0, jitter=0.0)

    def attempt():
        raise RuntimeError("substrate said no")

    task = policy.execute(kernel, attempt, label="t")
    kernel.run()
    assert task.finished and not task.succeeded and task.attempts == 2


def test_delay_caps_at_max_delay(kernel):
    policy = RetryPolicy(max_attempts=10, base_delay=100.0, multiplier=10.0,
                         max_delay=500.0, jitter=0.0)
    rng = kernel.rng.fork("check")
    assert policy.delay_for(1, rng) == 100.0
    assert policy.delay_for(2, rng) == 500.0
    assert policy.delay_for(5, rng) == 500.0


def test_cancel_stops_future_attempts(kernel):
    policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0)
    calls = []
    task = policy.execute(kernel, lambda: calls.append("x") and None,
                          label="t")
    task.cancel()
    kernel.run()
    assert calls == ["x"]  # only the synchronous first attempt
    assert task.finished and not task.succeeded


def test_retries_are_traced(kernel):
    policy = RetryPolicy(max_attempts=2, base_delay=10.0, jitter=0.0)
    policy.execute(kernel, lambda: None, label="beacon")
    kernel.run()
    assert kernel.trace.count(actor="retry", action="retry-backoff") == 1
    assert kernel.trace.count(actor="retry", action="retry-exhausted") == 1


def _jittered_delays(seed):
    kernel = Kernel(seed=seed)
    policy = RetryPolicy(max_attempts=4, base_delay=100.0, jitter=0.5)
    times = []
    policy.execute(kernel, lambda: times.append(kernel.now) and None,
                   label="jitter-test")
    kernel.run()
    return times


def test_same_seed_same_jittered_schedule():
    assert _jittered_delays(7) == _jittered_delays(7)


def test_different_seed_different_jitter():
    assert _jittered_delays(7) != _jittered_delays(8)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


def test_policy_rejects_nonpositive_max_delay():
    """Regression: an unvalidated ``max_delay<=0`` silently clamped
    every backoff to the 1e-9 floor — a hot loop, not a backoff."""
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=-3600.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=float("nan"))
    assert RetryPolicy(max_delay=0.5).max_delay == 0.5


def test_attempt_exceptions_are_traced_not_swallowed(kernel):
    policy = RetryPolicy(max_attempts=2, base_delay=5.0, jitter=0.0)

    def attempt():
        raise KeyError("substrate exploded")

    task = policy.execute(kernel, attempt, label="boom")
    kernel.run()
    assert task.finished and not task.succeeded
    errors = kernel.trace.query(actor="retry", action="retry-attempt-error")
    assert len(errors) == 2
    assert errors[0].target == "boom"
    assert errors[0].detail == {"attempt": 1, "error": "KeyError"}
    assert errors[1].detail == {"attempt": 2, "error": "KeyError"}
    assert kernel.metrics.value("retry.attempt_errors") == 2


def test_clean_none_failures_do_not_emit_attempt_errors(kernel):
    policy = RetryPolicy(max_attempts=2, base_delay=5.0, jitter=0.0)
    policy.execute(kernel, lambda: None, label="quiet")
    kernel.run()
    assert kernel.trace.count(actor="retry",
                              action="retry-attempt-error") == 0


# -- deterministic_backoff: wall-clock retries, kernel-free ---------------------

def test_deterministic_backoff_is_reproducible():
    from repro.sim.retry import deterministic_backoff

    policy = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                         max_delay=2.0, jitter=0.25)
    first = deterministic_backoff(policy, 42, "replica-0003")
    second = deterministic_backoff(policy, 42, "replica-0003")
    assert first == second
    assert len(first) == policy.max_attempts - 1
    assert all(delay > 0 for delay in first)


def test_deterministic_backoff_varies_by_seed_and_label():
    from repro.sim.retry import deterministic_backoff

    policy = RetryPolicy(max_attempts=4, base_delay=0.05, jitter=0.25)
    base = deterministic_backoff(policy, 42, "replica-0003")
    assert deterministic_backoff(policy, 43, "replica-0003") != base
    assert deterministic_backoff(policy, 42, "replica-0004") != base


def test_deterministic_backoff_without_jitter_is_the_exact_schedule():
    from repro.sim.retry import deterministic_backoff

    policy = RetryPolicy(max_attempts=4, base_delay=0.5, multiplier=2.0,
                         max_delay=10.0, jitter=0.0)
    assert deterministic_backoff(policy, 1, "x") == [0.5, 1.0, 2.0]


def test_deterministic_backoff_respects_max_delay_cap():
    from repro.sim.retry import deterministic_backoff

    policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=10.0,
                         max_delay=5.0, jitter=0.0)
    assert deterministic_backoff(policy, 1, "x") == [1.0, 5.0, 5.0, 5.0, 5.0]


def test_deterministic_backoff_explicit_attempt_count():
    from repro.sim.retry import deterministic_backoff

    policy = RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0)
    assert deterministic_backoff(policy, 1, "x", attempts=0) == []
    assert len(deterministic_backoff(policy, 1, "x", attempts=4)) == 4
    with pytest.raises(ValueError):
        deterministic_backoff(policy, 1, "x", attempts=-1)
