"""Services and scheduled tasks."""

import pytest

from repro.winsim import IntegrityLevel
from repro.winsim.services import Service


def test_create_service_writes_registry(host):
    host.vfs.write("c:\\windows\\system32\\trksvr.exe", b"svc")
    host.services.create("TrkSvr", "c:\\windows\\system32\\trksvr.exe")
    assert host.services.exists("trksvr")
    assert host.registry.get_value(
        r"hklm\system\currentcontrolset\services\TrkSvr", "imagepath"
    ) == "c:\\windows\\system32\\trksvr.exe"


def test_duplicate_service_rejected(host):
    host.vfs.write("c:\\x.exe", b"")
    host.services.create("S", "c:\\x.exe")
    with pytest.raises(ValueError):
        host.services.create("s", "c:\\x.exe")


def test_start_runs_payload_at_system_integrity(host):
    seen = []
    host.vfs.write("c:\\svc.exe", b"bin",
                   payload=lambda h, p: seen.append(p.integrity))
    host.services.create("Evil", "c:\\svc.exe")
    host.services.start("Evil")
    assert seen == [IntegrityLevel.SYSTEM]
    assert host.services.get("evil").running


def test_start_twice_is_idempotent(host):
    count = []
    host.vfs.write("c:\\svc.exe", b"", payload=lambda h, p: count.append(1))
    host.services.create("S", "c:\\svc.exe")
    host.services.start("S")
    host.services.start("S")
    assert count == [1]


def test_start_missing_service_raises(host):
    with pytest.raises(ValueError):
        host.services.start("ghost")


def test_start_with_missing_image_logs_and_raises(host):
    host.services.create("Broken", "c:\\missing.exe")
    from repro.winsim.vfs import FileNotFound

    with pytest.raises(FileNotFound):
        host.services.start("Broken")
    assert host.event_log.entries(severity="error", source="service-control")


def test_stop_and_delete(host):
    host.vfs.write("c:\\svc.exe", b"")
    host.services.create("S", "c:\\svc.exe")
    host.services.start("S")
    assert host.services.stop("S")
    assert not host.services.stop("S")
    assert host.services.delete("S")
    assert not host.services.exists("S")


def test_start_all_auto_skips_manual(host):
    host.vfs.write("c:\\a.exe", b"")
    host.vfs.write("c:\\m.exe", b"")
    host.services.create("AutoSvc", "c:\\a.exe")
    host.services.create("ManualSvc", "c:\\m.exe",
                         start_mode=Service.START_MANUAL)
    started = host.services.start_all_auto()
    assert started == ["AutoSvc"]


def test_task_runs_after_delay(kernel, host):
    fired = []
    host.vfs.write("c:\\t.exe", b"", payload=lambda h, p: fired.append(kernel.now))
    host.tasks.register("t1", "c:\\t.exe", delay=120.0)
    kernel.run()
    assert fired == [120.0]
    assert host.tasks.get("t1").run_count == 1


def test_task_missing_image_logged(kernel, host):
    host.tasks.register("ghostly", "c:\\none.exe", delay=1.0)
    kernel.run()
    assert host.event_log.entries(source="task-scheduler", severity="error")


def test_ms10_092_escalation_when_vulnerable(kernel, host):
    integrities = []
    host.vfs.write("c:\\e.exe", b"",
                   payload=lambda h, p: integrities.append(p.integrity))
    assert host.patches.is_vulnerable("MS10-092")
    host.tasks.register("eop", "c:\\e.exe", delay=1.0,
                        integrity=IntegrityLevel.SYSTEM,
                        caller_integrity=IntegrityLevel.USER)
    kernel.run()
    assert integrities == [IntegrityLevel.SYSTEM]


def test_ms10_092_patched_clamps_integrity(kernel, host):
    integrities = []
    host.patches.apply("MS10-092")
    host.vfs.write("c:\\e.exe", b"",
                   payload=lambda h, p: integrities.append(p.integrity))
    host.tasks.register("eop", "c:\\e.exe", delay=1.0,
                        integrity=IntegrityLevel.SYSTEM,
                        caller_integrity=IntegrityLevel.USER)
    kernel.run()
    assert integrities == [IntegrityLevel.USER]
    assert host.event_log.entries(source="task-scheduler",
                                  severity="warning")
