"""Cross-module integration: campaign -> forensic timeline -> report."""

import pytest

from repro import StuxnetNatanzCampaign
from repro.analysis import (
    category_histogram,
    dwell_time,
    reconstruct_timeline,
    render_timeline,
)


@pytest.fixture(scope="module")
def campaign():
    c = StuxnetNatanzCampaign(seed=77, centrifuge_count=100,
                              workstation_count=2, duration_days=90)
    c.run()
    return c


def test_full_campaign_timeline_has_every_tactic(campaign):
    events = reconstruct_timeline(campaign.world.kernel)
    histogram = category_histogram(events)
    for tactic in ("initial-access", "defense-evasion", "persistence",
                   "impact-staging", "impact", "lateral-movement"):
        assert histogram.get(tactic, 0) >= 1, "missing tactic: %s" % tactic


def test_tactics_appear_in_kill_chain_order(campaign):
    events = reconstruct_timeline(campaign.world.kernel)

    def first(category):
        return next(e.time for e in events if e.category == category)

    assert first("initial-access") <= first("defense-evasion")
    assert first("defense-evasion") <= first("impact-staging")
    assert first("impact-staging") <= first("impact")


def test_dwell_time_spans_the_campaign(campaign):
    kernel = campaign.world.kernel
    hostname = campaign.plant["engineering_host"].hostname
    dwell = dwell_time(kernel, "stuxnet", hostname)
    # Infected near the start, still resident at the end: dwell is
    # within a settle-period of the full campaign duration.
    assert dwell is not None
    assert dwell > 85 * 86400.0


def test_render_produces_calendar_report(campaign):
    kernel = campaign.world.kernel
    events = reconstruct_timeline(kernel)
    report = render_timeline(events, clock=kernel.clock, limit=10)
    assert "2010-" in report
    assert "initial-access" in report
