"""LAN/Internet integration: attachment, HTTP routing, WPAD, probes."""

import pytest

from repro.netsim import HttpResponse, HttpServer, Internet, Lan, NoRouteError
from repro.netsim.wpad import WpadConfig


@pytest.fixture
def net(kernel):
    return Internet(kernel)


def _site(internet, domain, body=b"ok"):
    server = HttpServer(domain)
    server.route("/", lambda request: HttpResponse(200, body))
    internet.register_site(domain, server)
    return server


def test_attach_assigns_addresses(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    a = host_factory("A")
    b = host_factory("B")
    ip_a = lan.attach(a)
    ip_b = lan.attach(b)
    assert ip_a != ip_b
    assert lan.host_by_ip(ip_a) is a
    assert lan.host_by_name("a") is a
    assert lan.ip_of(b) == ip_b
    assert lan.hosts() == [a, b]


def test_attach_duplicate_ip_rejected(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    lan.attach(host_factory("A"), ip="10.0.0.5")
    with pytest.raises(Exception):
        lan.attach(host_factory("B"), ip="10.0.0.5")


def test_detach(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    a = host_factory("A")
    lan.attach(a)
    assert lan.detach(a)
    assert a.nic is None
    assert not lan.detach(a)


def test_http_through_internet(kernel, net, host_factory):
    _site(net, "example.com", b"hello world")
    lan = Lan(kernel, "office", internet=net)
    client = host_factory("C")
    lan.attach(client)
    response = lan.http_get(client, "http://example.com/")
    assert response.body == b"hello world"
    assert len(net.capture.by_protocol("http")) == 2  # request + response


def test_air_gapped_lan_cannot_reach_internet(kernel, net, host_factory):
    _site(net, "example.com")
    lan = Lan(kernel, "plant", internet=None)
    client = host_factory("C")
    lan.attach(client)
    assert lan.air_gapped
    with pytest.raises(NoRouteError):
        lan.http_get(client, "http://example.com/")


def test_nxdomain_raises(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    client = host_factory("C")
    lan.attach(client)
    with pytest.raises(NoRouteError):
        lan.http_get(client, "http://ghost.example/")


def test_connectivity_probe(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    client = host_factory("C")
    lan.attach(client)
    assert not lan.has_internet_access(client)  # probe targets absent
    _site(net, "www.windowsupdate.com")
    assert lan.has_internet_access(client)


def test_netbios_broadcast_first_claimant_wins(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    a, b, c = host_factory("A"), host_factory("B"), host_factory("C")
    for h in (a, b, c):
        lan.attach(h)
    b.netbios_claims["wpad"] = lambda client: "b-answer"
    c.netbios_claims["wpad"] = lambda client: "c-answer"
    responder, value = lan.netbios_broadcast(a, "wpad")
    assert responder is b  # address order
    assert value == "b-answer"


def test_netbios_no_claimant(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    a = host_factory("A")
    lan.attach(a)
    assert lan.netbios_broadcast(a, "wpad") == (None, None)


def test_browser_start_caches_proxy_config(kernel, net, host_factory):
    lan = Lan(kernel, "office", internet=net)
    victim, proxy = host_factory("V"), host_factory("P")
    lan.attach(victim)
    lan.attach(proxy)
    proxy.netbios_claims["wpad"] = lambda client: WpadConfig("P", "P")
    config = lan.browser_start(victim)
    assert config.proxy_hostname == "P"
    assert victim.proxy_config is config


def test_proxy_intercepts_and_passes_through(kernel, net, host_factory):
    _site(net, "example.com", b"direct")
    lan = Lan(kernel, "office", internet=net)
    victim, proxy = host_factory("V"), host_factory("P")
    lan.attach(victim)
    lan.attach(proxy)

    class Interceptor:
        def handle(self, request):
            if "secret" in request.url:
                return HttpResponse(200, b"intercepted")
            return None

    proxy.proxy_service = Interceptor()
    proxy.netbios_claims["wpad"] = lambda client: WpadConfig("P", "P")
    lan.browser_start(victim)
    assert lan.http_get(victim, "http://example.com/secret").body == b"intercepted"
    assert lan.http_get(victim, "http://example.com/").body == b"direct"


def test_internet_domain_aliasing(kernel, net):
    server = HttpServer("multi")
    server.route("/", lambda request: HttpResponse(200, b"one server"))
    address = net.register_site("a.com", server)
    net.register_site("b.com", server, address=address)
    assert net.dns.resolve("a.com") == net.dns.resolve("b.com")
    assert net.site_count() == 1
    assert net.reachable("b.com")
