"""Property-based tests: crypto invariants."""

from hypothesis import given, settings, strategies as st

from repro.crypto import (
    Rc4Cipher,
    SealedBlob,
    forge_collision_block,
    generate_keypair,
    seal,
    unseal,
    weak_digest,
    xor_decrypt,
    xor_encrypt,
)
from repro.crypto.ciphers import xor_stream

#: One session-wide key pair: RSA generation dominates test time.
_KEYPAIR = generate_keypair("property-tests")


@given(data=st.binary(max_size=2048),
       key=st.binary(min_size=1, max_size=64))
def test_xor_round_trip(data, key):
    assert xor_decrypt(xor_encrypt(data, key), key) == data


@given(data=st.binary(max_size=4096),
       key=st.binary(min_size=1, max_size=64))
def test_xor_stream_equals_reference(data, key):
    assert xor_stream(data, key) == xor_encrypt(data, key)


@given(data=st.binary(max_size=2048),
       key=st.binary(min_size=1, max_size=64))
def test_rc4_round_trip(data, key):
    assert Rc4Cipher.decrypt(key, Rc4Cipher.encrypt(key, data)) == data


@given(data=st.binary(max_size=1024))
def test_weak_digest_deterministic_and_sized(data):
    assert weak_digest(data) == weak_digest(data)
    assert len(weak_digest(data)) == 16


@given(prefix_blocks=st.integers(min_value=0, max_value=8),
       prefix_fill=st.binary(min_size=16, max_size=16),
       target_source=st.binary(max_size=256))
def test_forged_collision_always_lands(prefix_blocks, prefix_fill,
                                       target_source):
    prefix = prefix_fill * prefix_blocks
    target = weak_digest(target_source)
    block = forge_collision_block(prefix, target)
    assert weak_digest(prefix + block) == target


@settings(max_examples=25, deadline=None)
@given(message=st.binary(min_size=1, max_size=512))
def test_rsa_sign_verify_property(message):
    signature = _KEYPAIR.sign(message)
    assert _KEYPAIR.public.verify(message, signature)
    assert not _KEYPAIR.public.verify(message + b"x", signature)


@settings(max_examples=25, deadline=None)
@given(payload=st.binary(max_size=4096),
       nonce=st.binary(max_size=16))
def test_sealed_blob_round_trip_property(payload, nonce):
    blob = seal(_KEYPAIR.public, payload, nonce=nonce)
    assert unseal(_KEYPAIR, blob) == payload
    wire = blob.to_bytes()
    assert unseal(_KEYPAIR, SealedBlob.from_bytes(wire)) == payload
