"""The observability layer: spans, metrics, and exporters."""

import io
import json
import math

import pytest

from repro.obs.export import (
    FIGURES,
    export_digest,
    export_figures,
    figure_edges,
    jsonable,
    prometheus_text,
    trace_lines,
    write_jsonl,
)
from repro.obs.metrics import (
    BYTE_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.spans import STATUS_ERROR, STATUS_OK, STATUS_OPEN, SpanRecorder


class FakeClock:
    def __init__(self):
        self.now = 0.0


# -- spans ---------------------------------------------------------------------


def test_context_manager_spans_nest_and_close():
    clock = FakeClock()
    recorder = SpanRecorder(clock)
    with recorder.span("campaign", seed=7) as outer:
        clock.now = 10.0
        with recorder.span("stage") as inner:
            clock.now = 25.0
        assert recorder.current is outer
    assert recorder.current is None
    assert outer.span_id == 1 and inner.span_id == 2
    assert inner.parent_id == outer.span_id
    assert inner.start == 10.0 and inner.end == 25.0
    assert inner.duration == 15.0
    assert outer.status == STATUS_OK
    assert outer.attrs == {"seed": 7}


def test_span_error_status_on_exception():
    recorder = SpanRecorder(FakeClock())
    with pytest.raises(RuntimeError):
        with recorder.span("doomed"):
            raise RuntimeError("boom")
    (span,) = recorder.spans("doomed")
    assert span.status == STATUS_ERROR
    assert span.finished


def test_begin_finish_spans_parent_onto_the_open_stack():
    clock = FakeClock()
    recorder = SpanRecorder(clock)
    with recorder.span("campaign"):
        async_span = recorder.begin("report", host="A")
    # The simulation moves on; the report resolves much later.
    clock.now = 500.0
    assert async_span.status == STATUS_OPEN
    assert async_span.duration is None
    recorder.finish(async_span)
    assert async_span.parent_id == 1
    assert async_span.end == 500.0
    # finish() is idempotent: a second close cannot rewrite the end.
    clock.now = 900.0
    recorder.finish(async_span, status=STATUS_ERROR)
    assert async_span.end == 500.0 and async_span.status == STATUS_OK


def test_span_queries_names_prefix_and_tree():
    recorder = SpanRecorder(FakeClock())
    with recorder.span("flame.campaign"):
        with recorder.span("flame.collect"):
            pass
        with recorder.span("flame.collect"):
            pass
    assert recorder.names() == {"flame.campaign", "flame.collect"}
    assert len(recorder.spans("flame.*")) == 3
    assert len(recorder.spans("flame.collect")) == 2
    assert recorder.by_id(1).name == "flame.campaign"
    assert recorder.by_id(99) is None
    tree = recorder.tree()
    assert [s.name for s in tree[None]] == ["flame.campaign"]
    assert [s.name for s in tree["flame.campaign"]] == ["flame.collect"] * 2


def test_kernel_owns_a_span_recorder(kernel):
    with kernel.span("stage", label="x") as span:
        kernel.run_for(30.0)
    assert span.duration == 30.0
    assert kernel.spans.names() == {"stage"}


# -- metrics -------------------------------------------------------------------


def test_counter_is_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.dec(3)
    gauge.inc()
    assert gauge.value == 8


def test_histogram_bucket_assignment_is_le_semantics():
    hist = Histogram("h", bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 10.0, 11.0):
        hist.observe(value)
    # le-1 catches 0.5 and 1.0; le-10 catches 5 and 10; 11 overflows.
    assert hist.bucket_counts() == [2, 2, 1]
    assert hist.count == 5
    assert hist.sum == pytest.approx(27.5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(5.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))


def test_registry_get_or_create_and_kind_conflicts():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    registry.inc("a", 2)
    assert registry.value("a") == 2
    assert registry.value("missing", default=-1) == -1
    with pytest.raises(TypeError):
        registry.gauge("a")
    registry.observe("h", 3.0)
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=BYTE_BUCKETS)
    with pytest.raises(TypeError):
        registry.value("h")
    assert "a" in registry and "missing" not in registry
    assert registry.names() == ["a", "h"]


def test_snapshot_is_sorted_and_primitive():
    registry = MetricsRegistry()
    registry.inc("z.count")
    registry.set_gauge("a.level", 3)
    registry.observe("m.size", 42.0)
    snapshot = registry.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot["z.count"] == {"type": "counter", "value": 1}
    assert snapshot["a.level"] == {"type": "gauge", "value": 3}
    assert snapshot["m.size"]["type"] == "histogram"
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_merge_snapshots_adds_counters_and_histograms():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.inc("c", 2)
    right.inc("c", 3)
    right.inc("only_right")
    left.set_gauge("g", 5)
    right.set_gauge("g", 2)
    for value in (1.0, 100.0):
        left.observe("h", value)
    right.observe("h", 100.0)
    merged = merge_snapshots(left.snapshot(), right.snapshot())
    assert merged["c"]["value"] == 5
    assert merged["only_right"]["value"] == 1
    assert merged["g"]["value"] == 5
    assert merged["h"]["count"] == 3
    assert merged["h"]["sum"] == pytest.approx(201.0)
    assert merged["h"]["counts"] == [
        a + b for a, b in zip(left.snapshot()["h"]["counts"],
                              right.snapshot()["h"]["counts"])]


def test_merge_rejects_mismatched_kinds_and_bounds():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("x")
    b.set_gauge("x", 1)
    with pytest.raises(ValueError):
        merge_snapshots(a.snapshot(), b.snapshot())
    c = MetricsRegistry()
    d = MetricsRegistry()
    c.observe("h", 1.0, buckets=(1.0, 2.0))
    d.observe("h", 1.0, buckets=(1.0, 3.0))
    with pytest.raises(ValueError):
        merge_snapshots(c.snapshot(), d.snapshot())


def test_kernel_counts_dispatched_events(kernel):
    fired = []
    kernel.call_later(1.0, lambda: fired.append(1), "tick")
    kernel.call_later(2.0, lambda: fired.append(2), "tock")
    kernel.run_for(5.0)
    assert len(fired) == 2
    assert kernel.metrics.value("sim.events_dispatched") == 2


# -- exporters -----------------------------------------------------------------


def test_jsonable_normalises_awkward_values():
    class Opaque:
        pass

    assert jsonable({"b": b"xyz", 2: Opaque(), "f": math.inf,
                     "n": float("nan"), "t": (1, True, None)}) == {
        "2": "<Opaque>", "b": "<3 bytes>", "f": "inf", "n": "nan",
        "t": [1, True, None]}
    assert jsonable({2.5, 1.0}) == [1.0, 2.5]


def _run_toy_simulation(seed=1):
    from repro.sim import Kernel

    kernel = Kernel(seed=seed)
    with kernel.span("toy.stage", depth=1):
        kernel.trace.record("toy", "did-thing", "host-1", size=b"abc")
        kernel.run_for(10.0)
    kernel.metrics.inc("toy.count", 3)
    kernel.metrics.observe("toy.sizes", 2.0)
    return kernel


def test_write_jsonl_shape_and_meta_header():
    kernel = _run_toy_simulation()
    stream = io.StringIO()
    count = write_jsonl(kernel, stream, meta={"campaign": "toy", "seed": 1})
    lines = [json.loads(line) for line in
             stream.getvalue().strip().split("\n")]
    assert count == len(lines)
    meta, rest = lines[0], lines[1:]
    assert meta["kind"] == "meta" and meta["campaign"] == "toy"
    assert meta["spans"] == 1 and meta["records"] == 1
    kinds = [line["kind"] for line in rest]
    # Three metrics: the kernel's own event counter plus the two toys.
    assert kinds == ["span", "record", "metric", "metric", "metric"]
    assert rest[0]["name"] == "toy.stage"
    assert rest[1]["detail"] == {"size": "<3 bytes>"}
    assert [line["name"] for line in rest[2:]] == [
        "sim.events_dispatched", "toy.count", "toy.sizes"]


def test_export_digest_matches_written_lines_and_is_stable():
    first = _run_toy_simulation()
    second = _run_toy_simulation()
    assert export_digest(first) == export_digest(second)
    second.metrics.inc("toy.count")
    assert export_digest(first) != export_digest(second)
    # The digest is exactly the hash of the serialised lines.
    import hashlib

    stream = io.StringIO()
    write_jsonl(first, stream)
    by_hand = hashlib.sha256(stream.getvalue().encode("utf-8")).hexdigest()
    assert export_digest(first) == by_hand


def test_prometheus_text_renders_all_kinds():
    registry = MetricsRegistry()
    registry.inc("net.http-requests", 7)
    registry.set_gauge("9lives", 2)
    registry.observe("h", 1.0, buckets=(1.0, 2.0))
    registry.observe("h", 99.0, buckets=(1.0, 2.0))
    text = prometheus_text(registry.snapshot())
    assert "# TYPE net_http_requests counter" in text
    assert "net_http_requests 7" in text
    assert "# TYPE _9lives gauge" in text
    assert '_bucket{le="1"} 1' in text
    assert '_bucket{le="+Inf"} 2' in text
    assert "h_sum 100" in text
    assert "h_count 2" in text
    assert prometheus_text({}) == ""


def test_figure_edges_counts_and_dedupes():
    kernel = _run_toy_simulation()
    kernel.trace.record("stuxnet", "infection", "HOST-A", via="usb")
    kernel.trace.record("stuxnet", "stuxnet-rpc-update", "HOST-B")
    kernel.trace.record("stuxnet", "stuxnet-rpc-update", "HOST-B")
    with kernel.span("stuxnet.campaign"):
        with kernel.span("stuxnet.usb_entry"):
            pass
    edges = figure_edges(kernel, "fig1-stuxnet-operation")
    by_key = {(e["src"], e["dst"], e["label"]): e["count"] for e in edges}
    # Record matches both the actor filter and the action filter: once.
    assert by_key[("stuxnet", "HOST-B", "stuxnet-rpc-update")] == 2
    assert by_key[("stuxnet", "HOST-A", "infection")] == 1
    assert by_key[("root", "stuxnet.campaign", "stage")] == 1
    assert by_key[("stuxnet.campaign", "stuxnet.usb_entry", "stage")] == 1
    assert [tuple(sorted(e)) for e in edges] == sorted(
        tuple(sorted(e)) for e in edges)
    with pytest.raises(KeyError):
        figure_edges(kernel, "fig7-unknown")


def test_export_figures_covers_every_figure(kernel):
    assert set(export_figures(kernel)) == set(FIGURES)


def test_instrumentation_does_not_disturb_seeded_rng(kernel):
    """Spans and metrics must not consume randomness or queue events."""
    from repro.sim import Kernel

    expected = [kernel.rng.fork("probe").uniform(0, 1) for _ in range(3)]
    fresh = Kernel(seed=1)
    with fresh.span("noise"):
        fresh.metrics.inc("noise.count")
        fresh.metrics.observe("noise.h", 1.0)
    observed = [fresh.rng.fork("probe").uniform(0, 1) for _ in range(3)]
    assert observed == expected
    assert fresh.pending_events == 0
