"""Stuxnet C&C update distribution: download and execute binaries."""

import pytest

from repro.malware.stuxnet import Stuxnet, StuxnetCncService
from repro.netsim import Internet, Lan
from repro.netsim.http import HttpResponse, HttpServer


@pytest.fixture
def connected(kernel, world, host_factory):
    internet = Internet(kernel)
    probe = HttpServer("wu")
    probe.route("/", lambda r: HttpResponse(200, b"ok"))
    internet.register_site("www.windowsupdate.com", probe)
    service = StuxnetCncService(internet)
    stux = Stuxnet(kernel, world, cnc_service=service)
    lan = Lan(kernel, "office", internet=internet)
    victim = host_factory("V", os_version="xp")
    lan.attach(victim)
    return {"service": service, "stux": stux, "lan": lan, "victim": victim}


def test_queued_update_downloaded_and_executed(kernel, connected):
    executed = []
    connected["service"].queue_update(
        "exp-100", b"\x90" * 256,
        behavior=lambda h, p: executed.append(h.hostname))
    connected["stux"].infect(connected["victim"], via="initial")
    kernel.run_for(2 * 86400.0)
    assert executed == ["V"]
    assert connected["service"].updates_served == 1
    record = kernel.trace.first(actor="V", action="stuxnet-update-applied")
    assert record.target == "exp-100"


def test_update_applied_once_per_host(kernel, connected):
    executed = []
    connected["service"].queue_update(
        "exp-200", b"\x90", behavior=lambda h, p: executed.append(1))
    connected["stux"].infect(connected["victim"], via="initial")
    kernel.run_for(7 * 86400.0)   # many beacons
    assert executed == [1]


def test_update_binary_lands_on_disk_hidden(kernel, connected):
    connected["service"].queue_update("exp-300", b"UPDATEBYTES")
    connected["stux"].infect(connected["victim"], via="initial")
    kernel.run_for(2 * 86400.0)
    victim = connected["victim"]
    dropped = [r for r in victim.vfs.walk("c:", raw=True)
               if r.data == b"UPDATEBYTES"]
    assert len(dropped) == 1
    # Rootkit active on XP: update files are invisible through the API.
    assert not victim.vfs.exists(dropped[0].path)


def test_missing_update_is_404(kernel, connected):
    internet_response = connected["lan"].http_get(
        connected["victim"], "http://www.mypremierfutbol.com/update.php",
        params={"name": "nope"})
    assert internet_response.status == 404
