"""Static dissection and sandbox detonation."""

import pytest

from repro.analysis import Sandbox, analyze_pe
from repro.malware.shamoon import build_trksvr_image
from repro.pe import PeBuilder


def test_static_report_on_shamoon_sample(world):
    image = build_trksvr_image()
    report = analyze_pe(image, trust_store=world.make_trust_store())
    assert report.parsed
    assert report.machine == "x86"
    assert report.size == 900 * 1024
    assert set(report.encrypted_resources) == {"PKCS7", "PKCS12", "X509"}
    assert any("XOR-encrypted" in a for a in report.anomalies)
    assert any("embedded executable" in a for a in report.anomalies)
    assert "kernel32.dll!CreateServiceA" in report.suspicious_imports
    assert report.suspicion_score >= 6
    assert report.signer is None


def test_static_report_on_benign_signed_binary(world):
    from repro.certs.codesign import sign_image
    from repro.certs.wellknown import ELDOS

    cert, keypair = world.vendor_credentials(ELDOS)
    builder = PeBuilder()
    builder.add_code_section(b"hello world app")
    image = sign_image(builder, keypair, [cert])
    report = analyze_pe(image, trust_store=world.make_trust_store())
    assert report.signature_valid
    assert report.signer == ELDOS
    assert report.suspicion_score <= 2
    assert report.summary_lines()


def test_static_report_flags_weak_hash_signatures(world):
    from repro.malware.flame.snack_munch_gadget import build_forged_update
    from repro.netsim.windowsupdate import UpdateRegistry

    image, _ = build_forged_update(world, lambda h, p: None, UpdateRegistry())
    report = analyze_pe(image, trust_store=world.make_trust_store())
    assert any("collision-prone" in a for a in report.anomalies)


def test_static_report_on_garbage():
    report = analyze_pe(b"garbage bytes")
    assert not report.parsed
    assert report.suspicion_score >= 1
    assert any("unparseable" in a for a in report.anomalies)


def test_sandbox_detonates_dropper_behaviour():
    sandbox = Sandbox(seed=5)

    def sample(host):
        host.vfs.write(host.system_dir + "\\dropped.exe", b"evil")
        host.registry.set_value(r"hklm\software\run", "evil", "dropped.exe")
        host.services.create("EvilSvc", host.system_dir + "\\dropped.exe")

    report = sandbox.detonate(sample)
    assert "c:\\windows\\system32\\dropped.exe" in report.files_created
    assert report.services_created == ["EvilSvc"]
    assert report.registry_keys_added
    assert report.verdict == "persistent-implant"
    assert report.host_usable
    assert report.summary_lines()


def test_sandbox_detects_rootkit_hiding():
    sandbox = Sandbox(seed=6)

    def sample(host):
        host.vfs.write(host.system_dir + "\\ghost.sys", b"rk",
                       origin="testkit")
        host.vfs.hide_filters.append(lambda r: r.origin == "testkit")

    report = sandbox.detonate(sample)
    assert report.hidden_files == ["c:\\windows\\system32\\ghost.sys"]
    assert report.verdict == "rootkit"


def test_sandbox_detects_destructive_sample():
    sandbox = Sandbox(seed=7)

    def sample(host):
        host.disk.write_mbr(b"\x00" * 512, kernel_mode=True)

    report = sandbox.detonate(sample)
    assert not report.host_usable
    assert report.verdict == "destructive"


def test_sandbox_inert_sample():
    sandbox = Sandbox(seed=8)
    report = sandbox.detonate(lambda host: None)
    assert report.verdict == "inert"
    assert report.files_created == []


def test_sandbox_detonates_bytes_with_payload():
    sandbox = Sandbox(seed=9)
    # Raw bytes with no behaviour: just a dropper-less write of the file.
    report = sandbox.detonate(b"\x00" * 64)
    assert any("sample.exe" in p for p in report.files_created)


def test_sandbox_time_advances_behaviour():
    sandbox = Sandbox(seed=10)

    def sample(host):
        host.kernel.call_later(1800.0, lambda: host.vfs.write(
            "c:\\late.txt", b"delayed"))

    report = sandbox.detonate(sample, run_seconds=3600.0)
    assert "c:\\late.txt" in report.files_created
