"""Process table and integrity levels."""

import pytest

from repro.winsim import IntegrityLevel, ProcessTable


@pytest.fixture
def table():
    return ProcessTable()


def test_baseline_tree_present(table):
    names = [p.name for p in table.listing()]
    assert "explorer.exe" in names
    assert "lsass.exe" in names


def test_spawn_assigns_increasing_pids(table):
    a = table.spawn("a.exe")
    b = table.spawn("b.exe")
    assert b.pid > a.pid
    assert a.integrity == IntegrityLevel.USER


def test_kill(table):
    process = table.spawn("victim.exe")
    assert table.kill(process.pid)
    assert not process.alive
    assert not table.kill(process.pid)  # already dead
    assert not table.kill(99999)


def test_find_by_name_excludes_dead_and_hidden(table):
    a = table.spawn("malware.exe")
    b = table.spawn("malware.exe")
    b.hidden = True
    c = table.spawn("malware.exe")
    table.kill(c.pid)
    visible = table.find_by_name("MALWARE.EXE")
    assert visible == [a]
    with_hidden = table.find_by_name("malware.exe", include_hidden=True)
    assert set(p.pid for p in with_hidden) == {a.pid, b.pid}


def test_listing_hides_rootkit_processes(table):
    ghost = table.spawn("ghost.exe")
    ghost.hidden = True
    assert ghost not in table.listing()
    assert ghost in table.listing(include_hidden=True)


def test_inject(table):
    process = table.spawn("services.exe")
    table.inject(process.pid, "stuxnet-loader")
    assert process.injected_payloads == ["stuxnet-loader"]
    table.kill(process.pid)
    with pytest.raises(ValueError):
        table.inject(process.pid, "again")


def test_escalate_only_raises(table):
    process = table.spawn("user.exe", IntegrityLevel.USER)
    table.escalate(process.pid, IntegrityLevel.SYSTEM)
    assert process.integrity == IntegrityLevel.SYSTEM
    table.escalate(process.pid, IntegrityLevel.USER)  # no demotion
    assert process.integrity == IntegrityLevel.SYSTEM


def test_escalate_dead_process_rejected(table):
    process = table.spawn("x.exe")
    table.kill(process.pid)
    with pytest.raises(ValueError):
        table.escalate(process.pid, IntegrityLevel.ADMIN)


def test_integrity_names():
    assert IntegrityLevel.name(IntegrityLevel.SYSTEM) == "system"
    assert "unknown" in IntegrityLevel.name(42)
